// Package bundle composes per-package snapshot sections into one serving
// artifact: everything a replica needs to answer queries — the space, the
// CSR door graph, both reachability summaries, each selected engine's
// materialization, and optionally the warm door-pair distance-cache pages.
//
// Build constructs the state from scratch (the expensive path: all-pairs
// Dijkstra for IDINDEX, per-access-door sweeps for the trees); Write saves
// it; Load boots an equivalent state from the artifact, skipping every
// expensive pass. A loaded bundle answers bit-identically to a freshly built
// one — the round-trip suite and the differential corpus gate that claim.
package bundle

import (
	"bufio"
	"fmt"
	"os"
	"sort"

	"indoorsq/internal/cindex"
	"indoorsq/internal/doorgraph"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/snapshot"
)

// EngineNames lists every engine a bundle can carry, in presentation order.
var EngineNames = []string{"IDModel", "IDIndex", "CIndex", "IPTree", "VIPTree"}

// Options configures what a bundle contains.
type Options struct {
	// Engines selects which engines to build/serve (default: all five).
	Engines []string
	// Gamma is the crucial-partition threshold for IP/VIP-TREE.
	Gamma int
	// Compact builds IDINDEX with float32 matrices.
	Compact bool
	// Workers bounds construction parallelism (<= 0: GOMAXPROCS). Results
	// are identical for every worker count.
	Workers int
	// WarmCache includes the door-pair distance-cache pages accumulated on
	// the build-side space, so a replica boots with the cache pre-filled.
	WarmCache bool
}

func (o Options) withDefaults() Options {
	if len(o.Engines) == 0 {
		o.Engines = append([]string(nil), EngineNames...)
	}
	return o
}

// Bundle is one complete serving state.
type Bundle struct {
	Name    string
	Space   *indoor.Space
	Graph   *doorgraph.Graph // nil when no engine needed it
	Engines map[string]query.Engine
	Gamma   int

	// ReachGraph condenses the built door graph (matrix-exact; adopted by
	// IDINDEX and the trees); ReachSpace the topological edge set (sound for
	// the online engines).
	ReachGraph *reach.Reach
	ReachSpace *reach.Reach

	// Provenance: Origin is "build" or "snapshot"; Fingerprint is the
	// space's topology hash; FormatVersion the snapshot format that carried
	// a loaded bundle (snapshot.Version for built ones).
	Origin        string
	Fingerprint   uint64
	FormatVersion uint32
}

// EngineList returns the bundle's engine names in canonical order.
func (b *Bundle) EngineList() []string {
	var out []string
	for _, n := range EngineNames {
		if _, ok := b.Engines[n]; ok {
			out = append(out, n)
		}
	}
	// Unknown names (future engines) go last, sorted.
	var extra []string
	for n := range b.Engines {
		found := false
		for _, k := range EngineNames {
			if n == k {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Build cold-constructs a bundle over a space: the door graph and both reach
// summaries once, then every selected engine through its ordinary
// constructor — so a built bundle's engines are exactly what the bench
// harness would have produced.
func Build(name string, sp *indoor.Space, opt Options) (*Bundle, error) {
	opt = opt.withDefaults()
	b := &Bundle{
		Name:        name,
		Space:       sp,
		Engines:     make(map[string]query.Engine, len(opt.Engines)),
		Gamma:       opt.Gamma,
		Origin:      "build",
		Fingerprint: indoor.Fingerprint(sp),

		FormatVersion: snapshot.Version,
	}
	b.Graph = doorgraph.BuildWorkers(sp, opt.Workers)
	b.ReachGraph = reach.FromGraph(b.Graph, sp, opt.Workers)
	b.ReachSpace = reach.FromSpace(sp, nil, opt.Workers)
	for _, name := range opt.Engines {
		switch name {
		case "IDModel":
			b.Engines[name] = idmodel.New(sp)
		case "IDIndex":
			if opt.Compact {
				b.Engines[name] = idindex.NewCompact(sp)
			} else {
				b.Engines[name] = idindex.NewWorkers(sp, opt.Workers)
			}
		case "CIndex":
			b.Engines[name] = cindex.New(sp)
		case "IPTree":
			b.Engines[name] = iptree.New(sp, iptree.Options{Gamma: opt.Gamma, Workers: opt.Workers})
		case "VIPTree":
			b.Engines[name] = iptree.New(sp, iptree.Options{Gamma: opt.Gamma, VIP: true, Workers: opt.Workers})
		default:
			return nil, fmt.Errorf("bundle: unknown engine %q", name)
		}
	}
	return b, nil
}

// Write streams the bundle to w as one snapshot file. warmCache includes the
// distance-cache pages currently filled on the bundle's space.
func (b *Bundle) Write(w *bufio.Writer, warmCache bool) error {
	sw := snapshot.NewWriter(w, b.Fingerprint)
	meta := sw.Begin(snapshot.TagMeta)
	meta.Str(b.Name)
	meta.I64(int64(b.Gamma))
	names := b.EngineList()
	meta.U64(uint64(len(names)))
	for _, n := range names {
		meta.Str(n)
	}

	b.Space.AppendTo(sw)
	if b.Graph != nil {
		b.Graph.AppendTo(sw)
	}
	if b.ReachGraph != nil {
		b.ReachGraph.AppendTo(sw, snapshot.TagReachGraph)
	}
	if b.ReachSpace != nil {
		b.ReachSpace.AppendTo(sw, snapshot.TagReachSpace)
	}
	for _, n := range names {
		switch e := b.Engines[n].(type) {
		case *idmodel.Model:
			// Rebuilt from the (warm) space on load; nothing to write.
		case *idindex.Index:
			e.AppendTo(sw)
		case *cindex.Index:
			e.AppendTo(sw)
		case *iptree.Tree:
			if n == "VIPTree" {
				e.AppendTo(sw, snapshot.TagVIPTree)
			} else {
				e.AppendTo(sw, snapshot.TagIPTree)
			}
		default:
			return fmt.Errorf("bundle: engine %q (%T) is not snapshotable", n, e)
		}
	}
	if warmCache {
		b.Space.DistCache().AppendTo(sw)
	}
	if err := sw.Close(); err != nil {
		return err
	}
	return w.Flush()
}

// WriteFile saves the bundle to path (atomically: temp file + rename).
func (b *Bundle) WriteFile(path string, warmCache bool) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := b.Write(bw, warmCache); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load boots a bundle from a parsed snapshot. Every engine the meta section
// names is reconstructed: section-backed engines load their matrices
// (skipping construction), IDModel rebuilds from the loaded space — against
// the warm distance cache when pages were shipped. The space fingerprint
// recomputed from the loaded space must match the header, which catches
// section/space mismatches even across separately produced files.
func Load(r *snapshot.Reader) (*Bundle, error) {
	meta, err := r.Section(snapshot.TagMeta)
	if err != nil {
		return nil, err
	}
	b := &Bundle{
		Name:          meta.Str(),
		Gamma:         int(meta.I64()),
		Engines:       make(map[string]query.Engine),
		Origin:        "snapshot",
		FormatVersion: r.FormatVersion(),
	}
	numEngines := meta.Int()
	if err := meta.Err(); err != nil {
		return nil, err
	}
	if numEngines < 0 || numEngines > 64 {
		return nil, fmt.Errorf("bundle: meta names %d engines", numEngines)
	}
	names := make([]string, numEngines)
	for i := range names {
		names[i] = meta.Str()
	}
	if err := meta.Err(); err != nil {
		return nil, err
	}

	sp, err := indoor.LoadSpace(r)
	if err != nil {
		return nil, err
	}
	b.Space = sp
	b.Fingerprint = indoor.Fingerprint(sp)
	if b.Fingerprint != r.Fingerprint() {
		return nil, fmt.Errorf("bundle: space fingerprint %016x does not match header %016x",
			b.Fingerprint, r.Fingerprint())
	}
	if err := sp.DistCache().LoadFrom(r); err != nil {
		return nil, err
	}
	if r.Has(snapshot.TagDoorGraph) {
		if b.Graph, err = doorgraph.LoadFrom(r); err != nil {
			return nil, err
		}
		if b.Graph.N != sp.NumDoors() {
			return nil, fmt.Errorf("bundle: door graph over %d doors, space has %d", b.Graph.N, sp.NumDoors())
		}
	}
	if r.Has(snapshot.TagReachGraph) {
		if b.ReachGraph, err = reach.LoadFrom(r, snapshot.TagReachGraph); err != nil {
			return nil, err
		}
	}
	if r.Has(snapshot.TagReachSpace) {
		if b.ReachSpace, err = reach.LoadFrom(r, snapshot.TagReachSpace); err != nil {
			return nil, err
		}
	}
	for _, n := range names {
		switch n {
		case "IDModel":
			b.Engines[n] = idmodel.New(sp)
		case "IDIndex":
			if b.ReachGraph == nil {
				return nil, fmt.Errorf("bundle: IDIndex section requires the graph reach summary")
			}
			e, err := idindex.LoadFrom(r, sp, b.ReachGraph)
			if err != nil {
				return nil, err
			}
			b.Engines[n] = e
		case "CIndex":
			if b.ReachSpace == nil {
				return nil, fmt.Errorf("bundle: CIndex section requires the space reach summary")
			}
			e, err := cindex.LoadFrom(r, sp, b.ReachSpace)
			if err != nil {
				return nil, err
			}
			b.Engines[n] = e
		case "IPTree", "VIPTree":
			if b.ReachGraph == nil {
				return nil, fmt.Errorf("bundle: %s section requires the graph reach summary", n)
			}
			tag := uint32(snapshot.TagIPTree)
			if n == "VIPTree" {
				tag = snapshot.TagVIPTree
			}
			e, err := iptree.LoadFrom(r, tag, sp, b.ReachGraph)
			if err != nil {
				return nil, err
			}
			b.Engines[n] = e
		default:
			return nil, fmt.Errorf("bundle: meta names unknown engine %q", n)
		}
	}
	return b, nil
}

// LoadFile boots a bundle from a snapshot file.
func LoadFile(path string) (*Bundle, error) {
	r, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	return Load(r)
}
