// Package snapshot implements the versioned binary container every built
// index structure serializes into: a fixed header, a sequence of 8-aligned
// sections holding flat little-endian scalar/array payloads, and a CRC-backed
// section directory in a trailer at the end of the file (so writers stream —
// even multi-gigabyte matrices are never buffered twice).
//
// The format is deliberately reflection-free: each owning package appends its
// arrays through the typed Section methods and reads them back in the same
// order through SectionReader. Every array's payload bytes start 8-aligned,
// which lets the reader hand back zero-copy views into the snapshot buffer on
// little-endian hosts — loading a snapshot is one file read plus pointer
// wiring, the "near-mmap" load the ROADMAP asks for. Returned views alias the
// snapshot buffer and MUST be treated as read-only; structures that mutate
// (e.g. distance-cache cells) copy instead.
//
// File layout (all integers little-endian):
//
//	header   (24 B)  magic "ISQSNAP1" | format version u32 | reserved u32 |
//	                 space fingerprint u64
//	sections (8-aligned, back to back)  raw payload bytes, zero-padded
//	directory (32 B/entry)  tag u32 | reserved u32 | offset u64 | length u64 |
//	                 payload CRC32-C u32 | reserved u32
//	trailer  (32 B)  directory offset u64 | entry count u64 |
//	                 directory CRC32-C u32 | format version u32 | magic
//
// Integrity: the trailer magic/version and directory CRC gate the directory;
// each section's CRC is verified when the section is opened. A truncated,
// bit-flipped, or foreign file fails loudly instead of loading garbage.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// Magic identifies a snapshot file; the trailing '1' is a container-layout
// generation, bumped only if the header/trailer framing itself changes.
const Magic = "ISQSNAP1"

// Version is the current format version. Readers reject other versions:
// sections are schema-less flat arrays, so cross-version compatibility is
// handled by explicit migration tooling, not by in-process guessing.
const Version uint32 = 1

// Section tags. Tags identify who owns a section's schema; a reader skips
// tags it does not know, so adding a tag is a backward-compatible change.
const (
	TagMeta       uint32 = 1  // bundle metadata (venue name, engine set)
	TagSpace      uint32 = 2  // indoor.Space raw model + derived geometry
	TagDoorGraph  uint32 = 3  // doorgraph CSR arrays, both directions
	TagIDIndex    uint32 = 4  // IDINDEX matrices (wide or narrow)
	TagCIndex     uint32 = 5  // CINDEX R-tree + topological links
	TagIPTree     uint32 = 6  // IP-TREE nodes, matrices, routing tables
	TagVIPTree    uint32 = 7  // VIP-TREE (same schema as TagIPTree)
	TagReachSpace uint32 = 8  // reach summary over the topological edge set
	TagReachGraph uint32 = 9  // reach summary over the built door graph
	TagDistCache  uint32 = 10 // warm door-pair distance-cache pages
)

const (
	headerSize  = 24
	trailerSize = 32
	dirEntSize  = 32
)

// castagnoli is the CRC polynomial used throughout (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLE reports whether the host is little-endian, enabling the zero-copy
// array views. Big-endian hosts fall back to element-wise decoding.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

var pad8 [8]byte

// dirEnt is one directory entry accumulated by the writer.
type dirEnt struct {
	tag    uint32
	off    uint64
	length uint64
	crc    uint32
}

// Writer streams a snapshot file: header first, then sections in call order,
// then the directory and trailer on Close. Section payloads go straight to
// the underlying writer (wrap files in a bufio.Writer), so nothing is
// buffered proportional to payload size.
type Writer struct {
	w   io.Writer
	off uint64
	err error
	dir []dirEnt
	cur *Section
}

// NewWriter starts a snapshot with the given space fingerprint in the header
// (see indoor.Fingerprint). The header is written immediately.
func NewWriter(w io.Writer, fingerprint uint64) *Writer {
	sw := &Writer{w: w}
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[16:24], fingerprint)
	sw.write(hdr[:])
	return sw
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.off += uint64(n)
	if err != nil {
		w.err = err
	}
}

// Begin opens a new section with the given tag, closing any open one. All
// subsequent Put calls append to this section until the next Begin or Close.
func (w *Writer) Begin(tag uint32) *Section {
	w.endSection()
	w.cur = &Section{w: w, tag: tag, start: w.off, crc: 0}
	return w.cur
}

// endSection pads the open section to an 8-byte boundary and records its
// directory entry.
func (w *Writer) endSection() {
	if w.cur == nil {
		return
	}
	s := w.cur
	w.cur = nil
	length := w.off - s.start
	if rem := w.off & 7; rem != 0 {
		w.write(pad8[:8-rem])
	}
	w.dir = append(w.dir, dirEnt{tag: s.tag, off: s.start, length: length, crc: s.crc})
}

// Close finishes the snapshot: it closes the open section and writes the
// directory and trailer. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	w.endSection()
	dirOff := w.off
	var ent [dirEntSize]byte
	dirCRC := uint32(0)
	for _, e := range w.dir {
		binary.LittleEndian.PutUint32(ent[0:4], e.tag)
		binary.LittleEndian.PutUint32(ent[4:8], 0)
		binary.LittleEndian.PutUint64(ent[8:16], e.off)
		binary.LittleEndian.PutUint64(ent[16:24], e.length)
		binary.LittleEndian.PutUint32(ent[24:28], e.crc)
		binary.LittleEndian.PutUint32(ent[28:32], 0)
		dirCRC = crc32.Update(dirCRC, castagnoli, ent[:])
		w.write(ent[:])
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], dirOff)
	binary.LittleEndian.PutUint64(tr[8:16], uint64(len(w.dir)))
	binary.LittleEndian.PutUint32(tr[16:20], dirCRC)
	binary.LittleEndian.PutUint32(tr[20:24], Version)
	copy(tr[24:32], Magic)
	w.write(tr[:])
	return w.err
}

// Err returns the first underlying write error.
func (w *Writer) Err() error { return w.err }

// Section appends typed values to one open section. Every value keeps the
// stream 8-aligned: scalars occupy 8 bytes, arrays are a u64 count followed
// by raw little-endian elements zero-padded to the next 8-byte boundary.
type Section struct {
	w     *Writer
	tag   uint32
	start uint64
	crc   uint32
	buf   [8]byte
}

func (s *Section) raw(b []byte) {
	s.crc = crc32.Update(s.crc, castagnoli, b)
	s.w.write(b)
}

func (s *Section) pad() {
	if rem := (s.w.off - s.start) & 7; rem != 0 {
		s.raw(pad8[:8-rem])
	}
}

// U64 appends one unsigned 64-bit value.
func (s *Section) U64(v uint64) {
	binary.LittleEndian.PutUint64(s.buf[:], v)
	s.raw(s.buf[:])
}

// I64 appends one signed 64-bit value.
func (s *Section) I64(v int64) { s.U64(uint64(v)) }

// F64 appends one float64.
func (s *Section) F64(v float64) { s.U64(math.Float64bits(v)) }

// Bool appends one boolean (as a full 8-byte word, keeping alignment).
func (s *Section) Bool(v bool) {
	if v {
		s.U64(1)
	} else {
		s.U64(0)
	}
}

// Bytes appends a length-prefixed byte array.
func (s *Section) Bytes(b []byte) {
	s.U64(uint64(len(b)))
	s.raw(b)
	s.pad()
}

// Str appends a length-prefixed string.
func (s *Section) Str(v string) { s.Bytes([]byte(v)) }

// sliceBytes returns the raw little-endian bytes of a numeric slice: an
// unsafe reinterpretation on little-endian hosts, an element-wise encode
// otherwise.
func sliceBytes[T any](v []T, put func(dst []byte, e T)) []byte {
	var zero T
	esz := int(unsafe.Sizeof(zero))
	if len(v) == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*esz)
	}
	out := make([]byte, len(v)*esz)
	for i, e := range v {
		put(out[i*esz:], e)
	}
	return out
}

// F64s appends a length-prefixed []float64.
func (s *Section) F64s(v []float64) {
	s.U64(uint64(len(v)))
	s.raw(sliceBytes(v, func(dst []byte, e float64) {
		binary.LittleEndian.PutUint64(dst, math.Float64bits(e))
	}))
	s.pad()
}

// F32s appends a length-prefixed []float32.
func (s *Section) F32s(v []float32) {
	s.U64(uint64(len(v)))
	s.raw(sliceBytes(v, func(dst []byte, e float32) {
		binary.LittleEndian.PutUint32(dst, math.Float32bits(e))
	}))
	s.pad()
}

// I32s appends a length-prefixed []int32.
func (s *Section) I32s(v []int32) {
	s.U64(uint64(len(v)))
	s.raw(sliceBytes(v, func(dst []byte, e int32) {
		binary.LittleEndian.PutUint32(dst, uint32(e))
	}))
	s.pad()
}

// I16s appends a length-prefixed []int16.
func (s *Section) I16s(v []int16) {
	s.U64(uint64(len(v)))
	s.raw(sliceBytes(v, func(dst []byte, e int16) {
		binary.LittleEndian.PutUint16(dst, uint16(e))
	}))
	s.pad()
}

// U64s appends a length-prefixed []uint64.
func (s *Section) U64s(v []uint64) {
	s.U64(uint64(len(v)))
	s.raw(sliceBytes(v, func(dst []byte, e uint64) {
		binary.LittleEndian.PutUint64(dst, e)
	}))
	s.pad()
}

// span locates one section inside the snapshot buffer.
type span struct {
	off    uint64
	length uint64
	crc    uint32
}

// Reader parses a snapshot held fully in memory. Sections are located
// through the trailer directory; their CRC is verified when opened.
type Reader struct {
	buf         []byte
	fingerprint uint64
	version     uint32
	sections    map[uint32]span
	order       []uint32
}

// Open reads and parses the snapshot file at path.
func Open(path string) (*Reader, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return NewReader(buf)
}

// ReadFrom slurps r and parses the result (used when the source is not a
// file; prefer Open for files, which sizes the buffer up front).
func ReadFrom(r io.Reader) (*Reader, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	return NewReader(buf)
}

// NewReader parses a snapshot from buf, which the returned Reader (and every
// zero-copy view handed out by its sections) aliases until dropped.
func NewReader(buf []byte) (*Reader, error) {
	if len(buf) < headerSize+trailerSize {
		return nil, fmt.Errorf("snapshot: truncated: %d bytes", len(buf))
	}
	if string(buf[:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic")
	}
	tr := buf[len(buf)-trailerSize:]
	if string(tr[24:32]) != Magic {
		return nil, fmt.Errorf("snapshot: bad trailer magic (truncated or corrupt file)")
	}
	r := &Reader{buf: buf, sections: make(map[uint32]span)}
	r.version = binary.LittleEndian.Uint32(buf[8:12])
	if r.version != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", r.version, Version)
	}
	if v := binary.LittleEndian.Uint32(tr[20:24]); v != r.version {
		return nil, fmt.Errorf("snapshot: header/trailer version mismatch (%d vs %d)", r.version, v)
	}
	r.fingerprint = binary.LittleEndian.Uint64(buf[16:24])

	dirOff := binary.LittleEndian.Uint64(tr[0:8])
	count := binary.LittleEndian.Uint64(tr[8:16])
	dirCRC := binary.LittleEndian.Uint32(tr[16:20])
	dirEnd := dirOff + count*dirEntSize
	if dirOff < headerSize || dirEnd > uint64(len(buf)-trailerSize) || dirEnd < dirOff {
		return nil, fmt.Errorf("snapshot: directory out of bounds")
	}
	dir := buf[dirOff:dirEnd]
	if crc32.Checksum(dir, castagnoli) != dirCRC {
		return nil, fmt.Errorf("snapshot: directory checksum mismatch")
	}
	for i := uint64(0); i < count; i++ {
		ent := dir[i*dirEntSize:]
		sp := span{
			off:    binary.LittleEndian.Uint64(ent[8:16]),
			length: binary.LittleEndian.Uint64(ent[16:24]),
			crc:    binary.LittleEndian.Uint32(ent[24:28]),
		}
		tag := binary.LittleEndian.Uint32(ent[0:4])
		if sp.off < headerSize || sp.off+sp.length > dirOff || sp.off+sp.length < sp.off {
			return nil, fmt.Errorf("snapshot: section %d out of bounds", tag)
		}
		if _, dup := r.sections[tag]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %d", tag)
		}
		r.sections[tag] = sp
		r.order = append(r.order, tag)
	}
	return r, nil
}

// Fingerprint returns the space fingerprint stamped into the header.
func (r *Reader) Fingerprint() uint64 { return r.fingerprint }

// FormatVersion returns the file's format version.
func (r *Reader) FormatVersion() uint32 { return r.version }

// Has reports whether the snapshot contains a section with the given tag.
func (r *Reader) Has(tag uint32) bool {
	_, ok := r.sections[tag]
	return ok
}

// Tags returns the section tags in file order.
func (r *Reader) Tags() []uint32 { return append([]uint32(nil), r.order...) }

// SectionSize returns the payload length of a section (0 when absent).
func (r *Reader) SectionSize(tag uint32) uint64 { return r.sections[tag].length }

// Section opens one section, verifying its payload CRC first.
func (r *Reader) Section(tag uint32) (*SectionReader, error) {
	sp, ok := r.sections[tag]
	if !ok {
		return nil, fmt.Errorf("snapshot: section %d not present", tag)
	}
	payload := r.buf[sp.off : sp.off+sp.length]
	if crc32.Checksum(payload, castagnoli) != sp.crc {
		return nil, fmt.Errorf("snapshot: section %d checksum mismatch (corrupt payload)", tag)
	}
	return &SectionReader{tag: tag, b: payload}, nil
}

// SectionReader consumes one section's payload in the exact order it was
// written. Errors are sticky: the first bad read poisons the reader and every
// later call returns zero values; callers check Err once at the end.
type SectionReader struct {
	tag uint32
	b   []byte
	pos int
	err error
}

// Err returns the first decoding error (typically a truncated section).
func (s *SectionReader) Err() error { return s.err }

func (s *SectionReader) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("snapshot: section %d: %s", s.tag, fmt.Sprintf(format, args...))
	}
}

func (s *SectionReader) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if n < 0 || s.pos+n > len(s.b) {
		s.fail("truncated payload (want %d bytes at %d of %d)", n, s.pos, len(s.b))
		return nil
	}
	b := s.b[s.pos : s.pos+n]
	s.pos += n
	return b
}

func (s *SectionReader) skipPad() {
	if rem := s.pos & 7; rem != 0 {
		s.take(8 - rem)
	}
}

// U64 reads one unsigned 64-bit value.
func (s *SectionReader) U64() uint64 {
	b := s.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads one signed 64-bit value.
func (s *SectionReader) I64() int64 { return int64(s.U64()) }

// Int reads one signed 64-bit value as an int.
func (s *SectionReader) Int() int { return int(s.I64()) }

// F64 reads one float64.
func (s *SectionReader) F64() float64 { return math.Float64frombits(s.U64()) }

// Bool reads one boolean.
func (s *SectionReader) Bool() bool { return s.U64() != 0 }

// Bytes reads a length-prefixed byte array (a view into the buffer).
func (s *SectionReader) Bytes() []byte {
	n := s.U64()
	if s.err != nil {
		return nil
	}
	if n > uint64(len(s.b)-s.pos) {
		s.fail("byte array length %d exceeds section", n)
		return nil
	}
	b := s.take(int(n))
	s.skipPad()
	return b
}

// Str reads a length-prefixed string.
func (s *SectionReader) Str() string { return string(s.Bytes()) }

// view reads a length-prefixed numeric array. On little-endian hosts with the
// expected alignment it returns a zero-copy view into the snapshot buffer
// (read-only!); otherwise it decodes into a fresh slice.
func view[T any](s *SectionReader, get func([]byte) T) []T {
	var zero T
	esz := int(unsafe.Sizeof(zero))
	n := s.U64()
	if s.err != nil {
		return nil
	}
	if n > uint64((len(s.b)-s.pos)/esz) {
		s.fail("array length %d exceeds section", n)
		return nil
	}
	b := s.take(int(n) * esz)
	s.skipPad()
	if n == 0 {
		return nil
	}
	if hostLE && uintptr(unsafe.Pointer(&b[0]))%uintptr(esz) == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), int(n))
	}
	out := make([]T, n)
	for i := range out {
		out[i] = get(b[i*esz:])
	}
	return out
}

// F64s reads a length-prefixed []float64 (zero-copy view when possible).
func (s *SectionReader) F64s() []float64 {
	return view(s, func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) })
}

// F32s reads a length-prefixed []float32.
func (s *SectionReader) F32s() []float32 {
	return view(s, func(b []byte) float32 { return math.Float32frombits(binary.LittleEndian.Uint32(b)) })
}

// I32s reads a length-prefixed []int32.
func (s *SectionReader) I32s() []int32 {
	return view(s, func(b []byte) int32 { return int32(binary.LittleEndian.Uint32(b)) })
}

// I16s reads a length-prefixed []int16.
func (s *SectionReader) I16s() []int16 {
	return view(s, func(b []byte) int16 { return int16(binary.LittleEndian.Uint16(b)) })
}

// U64s reads a length-prefixed []uint64.
func (s *SectionReader) U64s() []uint64 {
	return view(s, func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) })
}
