package snapshot

import (
	"bytes"
	"math"
	"testing"
)

// buildSample writes a two-section snapshot exercising every primitive.
func buildSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 0xDEADBEEFCAFE)
	s := w.Begin(TagMeta)
	s.Str("venue-1")
	s.U64(42)
	s.I64(-7)
	s.F64(math.Pi)
	s.Bool(true)
	s.Bool(false)
	s.Bytes([]byte{1, 2, 3})
	s = w.Begin(TagSpace)
	s.F64s([]float64{1.5, math.Inf(1), math.Copysign(0, -1), math.NaN()})
	s.F32s([]float32{2.5, -1})
	s.I32s([]int32{-1, 0, 7})
	s.I16s([]int16{3, -4, 5})
	s.U64s([]uint64{9, math.MaxUint64})
	s.F64s(nil)
	s.I32s([]int32{11})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Fingerprint() != 0xDEADBEEFCAFE {
		t.Fatalf("fingerprint = %#x", r.Fingerprint())
	}
	if r.FormatVersion() != Version {
		t.Fatalf("version = %d", r.FormatVersion())
	}
	if !r.Has(TagMeta) || !r.Has(TagSpace) || r.Has(TagIDIndex) {
		t.Fatalf("Has wrong: tags=%v", r.Tags())
	}
	if got := r.Tags(); len(got) != 2 || got[0] != TagMeta || got[1] != TagSpace {
		t.Fatalf("Tags = %v", got)
	}

	s, err := r.Section(TagMeta)
	if err != nil {
		t.Fatalf("Section(meta): %v", err)
	}
	if v := s.Str(); v != "venue-1" {
		t.Fatalf("Str = %q", v)
	}
	if v := s.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := s.I64(); v != -7 {
		t.Fatalf("I64 = %d", v)
	}
	if v := s.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if !s.Bool() || s.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := s.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", v)
	}
	if s.Err() != nil {
		t.Fatalf("meta Err: %v", s.Err())
	}

	s, err = r.Section(TagSpace)
	if err != nil {
		t.Fatalf("Section(space): %v", err)
	}
	f64 := s.F64s()
	if len(f64) != 4 || f64[0] != 1.5 || !math.IsInf(f64[1], 1) ||
		math.Float64bits(f64[2]) != math.Float64bits(math.Copysign(0, -1)) || !math.IsNaN(f64[3]) {
		t.Fatalf("F64s = %v", f64)
	}
	if f32 := s.F32s(); len(f32) != 2 || f32[0] != 2.5 || f32[1] != -1 {
		t.Fatalf("F32s = %v", f32)
	}
	if i32 := s.I32s(); len(i32) != 3 || i32[0] != -1 || i32[2] != 7 {
		t.Fatalf("I32s = %v", i32)
	}
	if i16 := s.I16s(); len(i16) != 3 || i16[1] != -4 {
		t.Fatalf("I16s = %v", i16)
	}
	if u64 := s.U64s(); len(u64) != 2 || u64[1] != math.MaxUint64 {
		t.Fatalf("U64s = %v", u64)
	}
	if v := s.F64s(); v != nil {
		t.Fatalf("empty F64s = %v", v)
	}
	if i32 := s.I32s(); len(i32) != 1 || i32[0] != 11 {
		t.Fatalf("trailing I32s = %v", i32)
	}
	if s.Err() != nil {
		t.Fatalf("space Err: %v", s.Err())
	}
}

func TestRejectBadMagic(t *testing.T) {
	data := buildSample(t)
	data[0] ^= 0xFF
	if _, err := NewReader(data); err == nil {
		t.Fatal("bad header magic accepted")
	}
	data = buildSample(t)
	data[len(data)-1] ^= 0xFF
	if _, err := NewReader(data); err == nil {
		t.Fatal("bad trailer magic accepted")
	}
}

func TestRejectBadVersion(t *testing.T) {
	data := buildSample(t)
	data[8] = 99
	if _, err := NewReader(data); err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestRejectTruncated(t *testing.T) {
	data := buildSample(t)
	for _, n := range []int{0, 1, headerSize, len(data) / 2, len(data) - 1} {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestRejectBitFlips(t *testing.T) {
	orig := buildSample(t)
	// Flip every byte in turn; a reader must never succeed AND serve a
	// corrupted section payload silently.
	for i := range orig {
		data := append([]byte(nil), orig...)
		data[i] ^= 0x40
		r, err := NewReader(data)
		if err != nil {
			continue // rejected at parse: fine
		}
		for _, tag := range r.Tags() {
			s, err := r.Section(tag)
			if err != nil {
				continue // rejected at section CRC: fine
			}
			// Section opened: its payload must be byte-identical to the
			// original (the flip landed in padding or dead bytes).
			ro, _ := NewReader(orig)
			so, err := ro.Section(tag)
			if err != nil {
				t.Fatalf("original section %d unreadable: %v", tag, err)
			}
			if !bytes.Equal(s.b, so.b) {
				t.Fatalf("flip at byte %d: section %d served corrupt payload", i, tag)
			}
		}
	}
}

func TestRejectTruncatedSectionReads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	s := w.Begin(TagMeta)
	s.U64(5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := r.Section(TagMeta)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.U64(); v != 5 {
		t.Fatalf("U64 = %d", v)
	}
	// Reading past the end must poison the reader, not panic.
	_ = sr.U64()
	_ = sr.F64s()
	if sr.Err() == nil {
		t.Fatal("over-read not reported")
	}
}

func TestRejectOversizedArrayHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	s := w.Begin(TagMeta)
	s.U64(math.MaxUint64) // bogus count with no payload behind it
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sr, _ := r.Section(TagMeta)
	if v := sr.F64s(); v != nil || sr.Err() == nil {
		t.Fatal("oversized array header not rejected")
	}
	sr, _ = r.Section(TagMeta)
	if v := sr.Bytes(); v != nil || sr.Err() == nil {
		t.Fatal("oversized byte header not rejected")
	}
}

func TestMissingSection(t *testing.T) {
	r, err := NewReader(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section(TagIPTree); err == nil {
		t.Fatal("absent section opened")
	}
	if got := r.SectionSize(TagMeta); got == 0 {
		t.Fatal("SectionSize(meta) = 0")
	}
}

func TestAlignment(t *testing.T) {
	// Interleave odd-length arrays and confirm every numeric view decodes —
	// the pad-to-8 discipline must hold regardless of element widths.
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	s := w.Begin(TagMeta)
	s.I16s([]int16{1})
	s.F64s([]float64{2})
	s.Bytes([]byte{3, 4, 5, 6, 7})
	s.U64s([]uint64{8})
	s.F32s([]float32{9, 10, 11})
	s.F64s([]float64{12})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := r.Section(TagMeta)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.I16s(); v[0] != 1 {
		t.Fatalf("i16 %v", v)
	}
	if v := sr.F64s(); v[0] != 2 {
		t.Fatalf("f64 %v", v)
	}
	if v := sr.Bytes(); len(v) != 5 || v[4] != 7 {
		t.Fatalf("bytes %v", v)
	}
	if v := sr.U64s(); v[0] != 8 {
		t.Fatalf("u64 %v", v)
	}
	if v := sr.F32s(); len(v) != 3 || v[2] != 11 {
		t.Fatalf("f32 %v", v)
	}
	if v := sr.F64s(); v[0] != 12 {
		t.Fatalf("f64b %v", v)
	}
	if sr.Err() != nil {
		t.Fatal(sr.Err())
	}
}
