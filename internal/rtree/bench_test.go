package rtree

import (
	"math/rand"
	"testing"

	"indoorsq/internal/geom"
)

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randRects(rng, 10000)
	b.ResetTimer()
	t := New(DefaultFanout)
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		t.Insert(it.Rect, it.Ref)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t := build(randRects(rng, 5000), DefaultFanout)
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i%900) + 50
		dst = t.Search(geom.R(x, x, x+30, x+30), dst[:0])
	}
}

func BenchmarkVisitNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	t := build(randRects(rng, 5000), DefaultFanout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		t.Visit(geom.Pt(500, 500), func(int32, float64) bool {
			count++
			return count < 10
		})
	}
}
