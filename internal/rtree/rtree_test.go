package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"indoorsq/internal/geom"
)

func randRects(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		w := rng.Float64() * 20
		h := rng.Float64() * 20
		items[i] = Item{Rect: geom.R(x, y, x+w, y+h), Ref: int32(i)}
	}
	return items
}

func build(items []Item, fanout int) *Tree {
	t := New(fanout)
	for _, it := range items {
		t.Insert(it.Rect, it.Ref)
	}
	return t
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Search(geom.R(0, 0, 10, 10), nil); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	calls := 0
	tr.Visit(geom.Pt(0, 0), func(int32, float64) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("Visit on empty tree made %d calls", calls)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randRects(rng, 500)
	tr := build(items, DefaultFanout)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		q := geom.R(x, y, x+rng.Float64()*100, y+rng.Float64()*100)
		got := tr.Search(q, nil)
		var want []int32
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want = append(want, it.Ref)
			}
		}
		sortInt32(got)
		sortInt32(want)
		if !eqInt32(got, want) {
			t.Fatalf("trial %d: Search = %v, want %v", trial, got, want)
		}
	}
}

func TestSearchPoint(t *testing.T) {
	tr := New(4)
	tr.Insert(geom.R(0, 0, 10, 10), 1)
	tr.Insert(geom.R(5, 5, 15, 15), 2)
	tr.Insert(geom.R(20, 20, 30, 30), 3)
	got := tr.SearchPoint(geom.Pt(7, 7), nil)
	sortInt32(got)
	if !eqInt32(got, []int32{1, 2}) {
		t.Fatalf("SearchPoint = %v, want [1 2]", got)
	}
}

func TestVisitOrdersByMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randRects(rng, 300)
	tr := build(items, 8)
	p := geom.Pt(500, 500)
	var dists []float64
	tr.Visit(p, func(ref int32, d float64) bool {
		dists = append(dists, d)
		return true
	})
	if len(dists) != 300 {
		t.Fatalf("Visit reported %d items, want 300", len(dists))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("Visit distances are not non-decreasing")
	}
	// Distances must equal the true MinDist per item.
	want := make([]float64, len(items))
	for i, it := range items {
		want[i] = it.Rect.MinDist(p)
	}
	sort.Float64s(want)
	for i := range dists {
		if math.Abs(dists[i]-want[i]) > 1e-9 {
			t.Fatalf("dist[%d] = %g, want %g", i, dists[i], want[i])
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randRects(rng, 300)
	tr := build(items, 8)
	calls := 0
	tr.Visit(geom.Pt(0, 0), func(int32, float64) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Fatalf("early stop made %d calls, want 10", calls)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randRects(rng, 2000)
	tr := build(items, DefaultFanout)
	if tr.Height() < 2 || tr.Height() > 6 {
		t.Fatalf("height = %d, expected a shallow tree", tr.Height())
	}
}

func TestInsertDuplicateRects(t *testing.T) {
	tr := New(4)
	r := geom.R(1, 1, 2, 2)
	for i := 0; i < 50; i++ {
		tr.Insert(r, int32(i))
	}
	got := tr.Search(r, nil)
	if len(got) != 50 {
		t.Fatalf("Search found %d of 50 duplicates", len(got))
	}
}

func TestSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := build(randRects(rng, 100), 8)
	if tr.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
