package rtree

import (
	"fmt"

	"indoorsq/internal/geom"
	"indoorsq/internal/snapshot"
)

// AppendTo flattens the tree into an already-begun snapshot section (the
// owning index — CINDEX — begins the section and embeds the tree alongside
// its other layers). Nodes are written in preorder, so reconstruction
// preserves the exact node and entry order; Search and Visit on a restored
// tree traverse identically to the original, down to tie-breaking.
func (t *Tree) AppendTo(sec *snapshot.Section) {
	var (
		leafs  []byte
		counts []int32
		rects  []float64
		refs   []int32 // leaf: items; internal: preorder child indices
	)
	nodes := 0
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		id := int32(nodes)
		nodes++
		if n.leaf {
			leafs = append(leafs, 1)
		} else {
			leafs = append(leafs, 0)
		}
		counts = append(counts, int32(len(n.rects)))
		for _, r := range n.rects {
			rects = append(rects, r.MinX, r.MinY, r.MaxX, r.MaxY)
		}
		// Reserve this node's ref range before recursing so entries stay in
		// node order; child ids are patched after their subtrees are walked.
		at := len(refs)
		if n.leaf {
			refs = append(refs, n.items...)
		} else {
			refs = append(refs, make([]int32, len(n.children))...)
			for i, c := range n.children {
				refs[at+i] = walk(c)
			}
		}
		return id
	}
	walk(t.root)
	sec.U64(uint64(t.max))
	sec.U64(uint64(t.min))
	sec.U64(uint64(t.size))
	sec.U64(uint64(t.height))
	sec.U64(uint64(t.nodeCnt))
	sec.U64(uint64(nodes))
	sec.Bytes(leafs)
	sec.I32s(counts)
	sec.F64s(rects)
	sec.I32s(refs)
}

// LoadTree reconstructs a tree written by AppendTo from the current position
// of a section reader.
func LoadTree(sec *snapshot.SectionReader) (*Tree, error) {
	t := &Tree{
		max:     int(sec.U64()),
		min:     int(sec.U64()),
		size:    int(sec.U64()),
		height:  int(sec.U64()),
		nodeCnt: int(sec.U64()),
	}
	numNodes := sec.Int()
	leafs := sec.Bytes()
	counts := sec.I32s()
	rects := sec.F64s()
	refs := sec.I32s()
	if err := sec.Err(); err != nil {
		return nil, err
	}
	if numNodes <= 0 || len(leafs) != numNodes || len(counts) != numNodes {
		return nil, fmt.Errorf("rtree: snapshot has %d nodes, %d flags, %d counts", numNodes, len(leafs), len(counts))
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("rtree: snapshot node with %d entries", c)
		}
		total += int(c)
	}
	if len(rects) != total*4 || len(refs) != total {
		return nil, fmt.Errorf("rtree: snapshot arrays sized %d/%d, want %d entries", len(rects), len(refs), total)
	}
	nodes := make([]node, numNodes)
	at := 0
	for i := range nodes {
		n := &nodes[i]
		n.leaf = leafs[i] != 0
		c := int(counts[i])
		n.rects = make([]geom.Rect, c)
		for j := 0; j < c; j++ {
			k := (at + j) * 4
			n.rects[j] = geom.Rect{MinX: rects[k], MinY: rects[k+1], MaxX: rects[k+2], MaxY: rects[k+3]}
		}
		if n.leaf {
			n.items = append([]int32(nil), refs[at:at+c]...)
		} else {
			n.children = make([]*node, c)
			for j := 0; j < c; j++ {
				ci := refs[at+j]
				if int(ci) <= i || int(ci) >= numNodes {
					return nil, fmt.Errorf("rtree: snapshot child %d of node %d out of preorder range", ci, i)
				}
				n.children[j] = &nodes[ci]
			}
		}
		at += c
	}
	t.root = &nodes[0]
	return t, nil
}
