// Package rtree implements an in-memory R-tree over 2D rectangles with
// quadratic-split insertion, rectangle range search, point search, and
// best-first nearest-neighbor traversal. It is the geometric layer of
// CINDEX (the paper uses an R-tree with fan-out 20 instead of an R*-tree,
// Sec. 5.3, since indoor partitions rarely overlap).
package rtree

import (
	"math"

	"indoorsq/internal/geom"
	"indoorsq/internal/pq"
)

// DefaultFanout is the node capacity suggested by the paper (Sec. 5.3).
const DefaultFanout = 20

// Item is a stored entry: a rectangle and an opaque reference.
type Item struct {
	Rect geom.Rect
	Ref  int32
}

type node struct {
	leaf     bool
	rects    []geom.Rect
	children []*node // non-leaf
	items    []int32 // leaf: refs parallel to rects
}

// Tree is an R-tree. The zero value is not usable; create trees with New.
type Tree struct {
	root    *node
	max     int
	min     int
	size    int
	height  int
	nodeCnt int
	path    []pathEntry // insertion scratch
}

// New returns an empty R-tree with the given node fan-out (capacity).
// Fan-outs below 4 are raised to 4.
func New(fanout int) *Tree {
	if fanout < 4 {
		fanout = 4
	}
	return &Tree{
		root:   &node{leaf: true},
		max:    fanout,
		min:    fanout * 2 / 5, // 40% minimum fill, as in R*-tree practice
		height: 1,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds an item to the tree.
func (t *Tree) Insert(r geom.Rect, ref int32) {
	t.size++
	leaf := t.chooseLeaf(t.root, r)
	leaf.rects = append(leaf.rects, r)
	leaf.items = append(leaf.items, ref)
	t.adjust(leaf)
}

// pathEntry remembers a parent visited by chooseLeaf so adjust can walk up.
type pathEntry struct {
	n   *node
	idx int
}

func (t *Tree) chooseLeaf(n *node, r geom.Rect) *node {
	t.path = t.path[:0]
	for !n.leaf {
		best, bestGrowth, bestArea := -1, math.Inf(1), math.Inf(1)
		for i, cr := range n.rects {
			g := cr.Enlargement(r)
			a := cr.Area()
			if g < bestGrowth || (g == bestGrowth && a < bestArea) {
				best, bestGrowth, bestArea = i, g, a
			}
		}
		t.path = append(t.path, pathEntry{n, best})
		n.rects[best] = n.rects[best].Union(r)
		n = n.children[best]
	}
	return n
}

// adjust splits overfull nodes from the leaf upward.
func (t *Tree) adjust(n *node) {
	for {
		if len(n.rects) <= t.max {
			return
		}
		left, right := t.split(n)
		if n == t.root {
			t.root = &node{
				leaf:     false,
				rects:    []geom.Rect{bound(left), bound(right)},
				children: []*node{left, right},
			}
			t.height++
			t.nodeCnt += 2
			return
		}
		// Replace n in its parent with left, append right.
		pe := t.path[len(t.path)-1]
		t.path = t.path[:len(t.path)-1]
		parent := pe.n
		parent.children[pe.idx] = left
		parent.rects[pe.idx] = bound(left)
		parent.children = append(parent.children, right)
		parent.rects = append(parent.rects, bound(right))
		t.nodeCnt++
		n = parent
	}
}

func bound(n *node) geom.Rect {
	r := n.rects[0]
	for _, x := range n.rects[1:] {
		r = r.Union(x)
	}
	return r
}

// split performs a quadratic split of an overfull node into two nodes.
func (t *Tree) split(n *node) (*node, *node) {
	// Pick the pair of seeds wasting the most area.
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(n.rects); i++ {
		for j := i + 1; j < len(n.rects); j++ {
			waste := n.rects[i].Union(n.rects[j]).Area() - n.rects[i].Area() - n.rects[j].Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	left := &node{leaf: n.leaf}
	right := &node{leaf: n.leaf}
	assign := func(dst *node, i int) {
		dst.rects = append(dst.rects, n.rects[i])
		if n.leaf {
			dst.items = append(dst.items, n.items[i])
		} else {
			dst.children = append(dst.children, n.children[i])
		}
	}
	assign(left, s1)
	assign(right, s2)
	lb, rb := n.rects[s1], n.rects[s2]

	remaining := make([]int, 0, len(n.rects)-2)
	for i := range n.rects {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment when one side must take all remaining entries to
		// reach the minimum fill.
		if len(left.rects)+len(remaining) == t.min {
			for _, i := range remaining {
				assign(left, i)
				lb = lb.Union(n.rects[i])
			}
			break
		}
		if len(right.rects)+len(remaining) == t.min {
			for _, i := range remaining {
				assign(right, i)
				rb = rb.Union(n.rects[i])
			}
			break
		}
		// Pick the entry with the greatest preference for one side.
		bestK, bestDiff := 0, -1.0
		for k, i := range remaining {
			d1 := lb.Enlargement(n.rects[i])
			d2 := rb.Enlargement(n.rects[i])
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestK, bestDiff = k, diff
			}
		}
		i := remaining[bestK]
		remaining = append(remaining[:bestK], remaining[bestK+1:]...)
		d1 := lb.Enlargement(n.rects[i])
		d2 := rb.Enlargement(n.rects[i])
		toLeft := d1 < d2 ||
			(d1 == d2 && lb.Area() < rb.Area()) ||
			(d1 == d2 && lb.Area() == rb.Area() && len(left.rects) <= len(right.rects))
		if toLeft {
			assign(left, i)
			lb = lb.Union(n.rects[i])
		} else {
			assign(right, i)
			rb = rb.Union(n.rects[i])
		}
	}
	return left, right
}

// Search appends to dst the refs of all items whose rectangles intersect q
// and returns the extended slice.
func (t *Tree) Search(q geom.Rect, dst []int32) []int32 {
	return t.search(t.root, q, dst)
}

func (t *Tree) search(n *node, q geom.Rect, dst []int32) []int32 {
	for i, r := range n.rects {
		if !r.Intersects(q) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.items[i])
		} else {
			dst = t.search(n.children[i], q, dst)
		}
	}
	return dst
}

// SearchPoint appends the refs of all items whose rectangles contain p.
func (t *Tree) SearchPoint(p geom.Point, dst []int32) []int32 {
	return t.Search(geom.RectAround(p), dst)
}

// Visit walks items in best-first order of MinDist from p, calling fn with
// each item's ref and its rectangle's MinDist. fn returns false to stop the
// traversal early (the standard distance-browsing kNN pattern).
// Visit also reports the number of heap operations performed, a proxy for
// pruning effort.
func (t *Tree) Visit(p geom.Point, fn func(ref int32, minDist float64) bool) int {
	var q pq.Heap[bfEntry]
	q.Push(bfEntry{n: t.root}, 0)
	ops := 1
	for q.Len() > 0 {
		e, dist := q.Pop()
		ops++
		if e.isItem {
			if !fn(e.ref, dist) {
				return ops
			}
			continue
		}
		n := e.n
		for i, r := range n.rects {
			d := r.MinDist(p)
			if n.leaf {
				q.Push(bfEntry{ref: n.items[i], isItem: true}, d)
			} else {
				q.Push(bfEntry{n: n.children[i]}, d)
			}
			ops++
		}
	}
	return ops
}

// bfEntry is a best-first traversal entry: either a node or a stored item.
type bfEntry struct {
	n      *node
	ref    int32
	isItem bool
}

// SizeBytes returns a deep size estimate of the tree.
func (t *Tree) SizeBytes() int64 {
	var sz int64
	var walk func(n *node)
	walk = func(n *node) {
		sz += 48 // node header
		sz += int64(len(n.rects)) * 32
		sz += int64(len(n.items)) * 4
		sz += int64(len(n.children)) * 8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return sz
}
