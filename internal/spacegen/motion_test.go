package spacegen

import (
	"reflect"
	"testing"
)

// TestMotionStream pins the generator's contract: determinism, validity of
// every report (Part hosts Loc), strictly increasing timestamps, and that
// the walk actually crosses partitions.
func TestMotionStream(t *testing.T) {
	sp, err := Generate(7, Params{Floors: 1, Rows: 4, Cols: 5}.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	ms := MotionStream(sp, 42, 20, 500, 10, 0.5, 0.3)
	if len(ms) != 500 {
		t.Fatalf("got %d motions, want 500", len(ms))
	}
	if again := MotionStream(sp, 42, 20, 500, 10, 0.5, 0.3); !reflect.DeepEqual(ms, again) {
		t.Fatal("same arguments produced a different stream")
	}
	crossed := false
	lastPart := map[int32]int32{}
	prevT := 0.0
	for i, m := range ms {
		part := sp.Partition(m.Part)
		if part.Floor != m.Loc.Floor || !part.Poly.Contains(m.Loc.XY()) {
			t.Fatalf("motion %d: partition %d does not host %v", i, m.Part, m.Loc)
		}
		if m.T <= prevT {
			t.Fatalf("motion %d: timestamp %v not strictly increasing (prev %v)", i, m.T, prevT)
		}
		prevT = m.T
		if lp, ok := lastPart[m.ID]; ok && lp != int32(m.Part) {
			crossed = true
		}
		lastPart[m.ID] = int32(m.Part)
	}
	if !crossed {
		t.Fatal("500 steps at hopFrac 0.3 never crossed a partition")
	}
}
