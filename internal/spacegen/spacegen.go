// Package spacegen generates seeded, fully deterministic random indoor
// spaces for the generative correctness harness: parameterized floors,
// room grids, hallway topologies (straight corridor, concave L, and
// double-loaded comb), imbalanced partition widths, optional rectilinear
// decomposition of the concave hallway into pieces joined by virtual
// doors, unidirectional extra doors, and staircases.
//
// Every space Generate emits passes the Builder's structural validation
// and the deep diagnostics of Space.Check: rooms form a bidirectional
// spanning tree onto the hallway (so every partition keeps nonempty
// enter/leave sets), doors sit at shared-wall midpoints (on the boundary
// of both partitions), one-way doors are only ever added on top of the
// tree, and staircases alternate their footprint slot by floor parity so
// consecutive stairwells never overlap on their shared floor.
//
// Generation is single-threaded and driven by one rand.Rand seeded from
// the caller's seed, so identical (seed, Params) pairs produce
// byte-identical spaces regardless of GOMAXPROCS.
package spacegen

import (
	"fmt"
	"math/rand"

	"indoorsq/internal/decomp"
	"indoorsq/internal/geom"
	"indoorsq/internal/indoor"
)

// HallKind selects the hallway topology of each floor.
type HallKind uint8

const (
	// HallStraight is a convex corridor below the room grid.
	HallStraight HallKind = iota
	// HallL is a concave L: the corridor plus a west arm running up the
	// full height of the floor, giving every floor a concave partition.
	HallL
	// HallComb is a double-loaded corridor: one extra row of rooms south
	// of the corridor, the grid north of it.
	HallComb

	numHallKinds = 3
)

// String implements fmt.Stringer.
func (k HallKind) String() string {
	switch k {
	case HallStraight:
		return "straight"
	case HallL:
		return "L"
	case HallComb:
		return "comb"
	default:
		return fmt.Sprintf("HallKind(%d)", uint8(k))
	}
}

// Params parameterizes one generated space. The zero value normalizes to
// a small single-floor straight-corridor venue.
type Params struct {
	// Floors is the number of floors (1..4); consecutive floors are
	// linked by staircases.
	Floors int
	// Rows and Cols shape the room grid north of the hallway
	// (Rows 1..512, Cols 2..512). The correctness harnesses stay in the
	// single-digit range; the upper bounds exist so benchmark tooling can
	// generate venues up to ~10^5 doors per floor.
	Rows, Cols int
	// Hall selects the hallway topology.
	Hall HallKind
	// ExtraDoors is the number of extra room-to-room door attempts per
	// floor beyond the spanning tree (0..10). Duplicate walls are skipped.
	ExtraDoors int
	// OneWayFrac is the probability that an extra door is unidirectional.
	// It never applies to tree doors, so validity is preserved.
	OneWayFrac float64
	// Imbalance in [0,1] scales the random variation of column widths:
	// 0 gives a uniform grid, 1 columns between half and 1.5x base width.
	Imbalance float64
	// Decompose routes the concave hallway (HallL only) through
	// decomp.Decompose: the hall becomes rectangular pieces joined by
	// virtual doors instead of one concave partition.
	Decompose bool
	// StairLength is the walking length of each staircase (3..12).
	StairLength float64
	// Objects is the object count for Objects (0..64).
	Objects int
}

// Normalize clamps every field into its documented range and fills
// zero-value defaults, so arbitrary (e.g. fuzzer-decoded) parameters
// always describe a generable space.
func (p Params) Normalize() Params {
	p.Floors = clampInt(p.Floors, 1, 4)
	p.Rows = clampInt(p.Rows, 1, 512)
	p.Cols = clampInt(p.Cols, 2, 512)
	p.Hall = HallKind(uint8(p.Hall) % numHallKinds)
	p.ExtraDoors = clampInt(p.ExtraDoors, 0, 10)
	p.OneWayFrac = clampFloat(p.OneWayFrac, 0, 1)
	p.Imbalance = clampFloat(p.Imbalance, 0, 1)
	if p.StairLength == 0 {
		p.StairLength = 6
	}
	p.StairLength = clampFloat(p.StairLength, 3, 12)
	p.Objects = clampInt(p.Objects, 0, 64)
	if p.Hall != HallL {
		p.Decompose = false
	}
	return p
}

// String renders the parameters compactly for failure messages; a
// failing (seed, Params) pair printed by the harness reproduces the
// exact space.
func (p Params) String() string {
	return fmt.Sprintf("{floors=%d rows=%d cols=%d hall=%s extra=%d oneway=%.2f imbalance=%.2f decompose=%t stair=%.1f objects=%d}",
		p.Floors, p.Rows, p.Cols, p.Hall, p.ExtraDoors, p.OneWayFrac,
		p.Imbalance, p.Decompose, p.StairLength, p.Objects)
}

// ParamsFromBytes decodes fuzzer-provided bytes into normalized
// parameters, so a native fuzz target explores the space of spaces.
// Missing bytes fall back to small defaults.
func ParamsFromBytes(b []byte) Params {
	get := func(i int, def byte) byte {
		if i < len(b) {
			return b[i]
		}
		return def
	}
	p := Params{
		Floors:      int(get(0, 0)%4) + 1,
		Rows:        int(get(1, 1)%5) + 1,
		Cols:        int(get(2, 1)%5) + 2,
		Hall:        HallKind(get(3, 0) % numHallKinds),
		ExtraDoors:  int(get(4, 2) % 8),
		OneWayFrac:  float64(get(5, 0)%5) / 8,
		Imbalance:   float64(get(6, 0)%5) / 4,
		Decompose:   get(7, 0)%2 == 1,
		StairLength: 3 + float64(get(8, 3)%10),
		Objects:     int(get(9, 12)%32) + 4,
	}
	return p.Normalize()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if !(v >= lo) { // NaN clamps low
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Layout constants shared by every topology.
const (
	hallH  = 4.0 // corridor height
	cellH  = 8.0 // room row height
	baseW  = 8.0 // base column width before imbalance
	armW   = 6.0 // west arm width of the L hallway
	stairW = 3.0 // stairwell depth east of the corridor
)

// Generate builds the space described by (seed, p). The same pair always
// yields a byte-identical space (see EncodeSpace); any normalized
// parameters yield a space whose Check() is clean.
func Generate(seed int64, p Params) (*indoor.Space, error) {
	p = p.Normalize()
	rng := rand.New(rand.NewSource(seed))
	b := indoor.NewBuilder(fmt.Sprintf("spacegen-%d", seed), p.Floors)

	// Column widths are drawn once and shared by all floors so staircase
	// footprints line up across floors.
	xs := make([]float64, p.Cols+1)
	if p.Hall == HallL {
		xs[0] = armW
	}
	for c := 0; c < p.Cols; c++ {
		w := baseW * (1 - p.Imbalance*0.5 + p.Imbalance*rng.Float64())
		xs[c+1] = xs[c] + w
	}
	W := xs[p.Cols]

	// Vertical layout per topology.
	hallY0 := 0.0
	if p.Hall == HallComb {
		hallY0 = cellH // one row of south rooms below the corridor
	}
	hallY1 := hallY0 + hallH
	rowY := func(r int) float64 { return hallY1 + float64(r)*cellH }
	H := rowY(p.Rows)

	// hallPiece locates the hallway partition owning a boundary point —
	// the identity map unless the hallway was decomposed.
	type piece struct {
		rect geom.Rect
		id   indoor.PartitionID
	}
	hallPieces := make([][]piece, p.Floors)
	hallAt := func(fl int, pt geom.Point) indoor.PartitionID {
		ps := hallPieces[fl]
		if len(ps) == 1 {
			return ps[0].id
		}
		for _, pc := range ps {
			if pc.rect.Contains(pt) {
				return pc.id
			}
		}
		// Unreachable for points on hallway walls; fall back to piece 0
		// so the Builder reports the inconsistency instead of panicking.
		return ps[0].id
	}

	rooms := make([][][]indoor.PartitionID, p.Floors)
	for fl := 0; fl < p.Floors; fl++ {
		floor := int16(fl)

		// 1. Hallway (one partition, or decomposed pieces + virtual doors).
		switch {
		case p.Hall == HallL && p.Decompose:
			res, err := decomp.Decompose(lHallPoly(W, H))
			if err != nil {
				return nil, fmt.Errorf("spacegen: decompose hallway: %w", err)
			}
			ids := make([]indoor.PartitionID, len(res.Pieces))
			for i, r := range res.Pieces {
				ids[i] = b.AddHallway(floor, geom.RectPoly(r))
				hallPieces[fl] = append(hallPieces[fl], piece{rect: r, id: ids[i]})
			}
			for _, j := range res.Junctions {
				vd := b.AddVirtualDoor(j.P, floor)
				b.ConnectBoth(vd, ids[j.A], ids[j.B])
			}
		case p.Hall == HallL:
			id := b.AddHallway(floor, lHallPoly(W, H))
			hallPieces[fl] = []piece{{rect: geom.R(0, 0, W, H), id: id}}
		default:
			r := geom.R(0, hallY0, W, hallY1)
			id := b.AddHallway(floor, geom.RectPoly(r))
			hallPieces[fl] = []piece{{rect: r, id: id}}
		}

		// 2. Room grid north of the corridor.
		rooms[fl] = make([][]indoor.PartitionID, p.Rows)
		for r := 0; r < p.Rows; r++ {
			rooms[fl][r] = make([]indoor.PartitionID, p.Cols)
			for c := 0; c < p.Cols; c++ {
				poly := geom.RectPoly(geom.R(xs[c], rowY(r), xs[c+1], rowY(r)+cellH))
				rooms[fl][r][c] = b.AddRoom(floor, poly)
			}
		}

		// 3. South rooms of the comb topology, each opening onto the
		// corridor through its top wall.
		if p.Hall == HallComb {
			for c := 0; c < p.Cols; c++ {
				poly := geom.RectPoly(geom.R(xs[c], 0, xs[c+1], cellH))
				south := b.AddRoom(floor, poly)
				pt := geom.Pt((xs[c]+xs[c+1])/2, hallY0)
				d := b.AddDoor(pt, floor)
				b.ConnectBoth(d, south, hallAt(fl, pt))
			}
		}

		// 4. Spanning-tree doors: row 0 onto the corridor, every higher
		// room onto the room below. All bidirectional, so every partition
		// keeps nonempty Enter and Leave sets.
		for c := 0; c < p.Cols; c++ {
			pt := geom.Pt((xs[c]+xs[c+1])/2, hallY1)
			d := b.AddDoor(pt, floor)
			b.ConnectBoth(d, hallAt(fl, pt), rooms[fl][0][c])
		}
		for r := 1; r < p.Rows; r++ {
			for c := 0; c < p.Cols; c++ {
				pt := geom.Pt((xs[c]+xs[c+1])/2, rowY(r))
				d := b.AddDoor(pt, floor)
				b.ConnectBoth(d, rooms[fl][r-1][c], rooms[fl][r][c])
			}
		}

		// 5. Arm doors of the L topology: west-column rooms may open onto
		// the vertical arm, creating cycles through the concave hallway.
		if p.Hall == HallL {
			for r := 0; r < p.Rows; r++ {
				if rng.Float64() >= 0.5 {
					continue
				}
				pt := geom.Pt(armW, rowY(r)+cellH/2)
				d := b.AddDoor(pt, floor)
				b.ConnectBoth(d, hallAt(fl, pt), rooms[fl][r][0])
			}
		}

		// 6. Extra room-to-room doors on vertical shared walls; only these
		// may be unidirectional.
		used := make(map[[2]int]bool)
		for i := 0; i < p.ExtraDoors; i++ {
			r := rng.Intn(p.Rows)
			c := rng.Intn(p.Cols - 1)
			if used[[2]int{r, c}] {
				continue
			}
			used[[2]int{r, c}] = true
			pt := geom.Pt(xs[c+1], rowY(r)+cellH/2)
			d := b.AddDoor(pt, floor)
			a, z := rooms[fl][r][c], rooms[fl][r][c+1]
			if rng.Float64() < p.OneWayFrac {
				if rng.Intn(2) == 0 {
					a, z = z, a
				}
				b.ConnectOneWay(d, a, z)
			} else {
				b.ConnectBoth(d, a, z)
			}
		}
	}

	// 7. Staircases east of the corridor. Consecutive stairwells share a
	// floor, so they alternate between the south and north half of the
	// corridor's east wall to keep their footprints disjoint.
	yMid := (hallY0 + hallY1) / 2
	for fl := 0; fl+1 < p.Floors; fl++ {
		y0, y1 := hallY0, yMid
		if fl%2 == 1 {
			y0, y1 = yMid, hallY1
		}
		st := b.AddStair(int16(fl), int16(fl+1), geom.RectPoly(geom.R(W, y0, W+stairW, y1)), p.StairLength)
		pt := geom.Pt(W, (y0+y1)/2)
		dLo := b.AddDoor(pt, int16(fl))
		b.ConnectBoth(dLo, hallAt(fl, pt), st)
		dHi := b.AddDoor(pt, int16(fl+1))
		b.ConnectBoth(dHi, hallAt(fl+1, pt), st)
	}

	return b.Build()
}

// lHallPoly returns the concave L hallway polygon: the corridor
// [0,W]x[0,hallH] plus the west arm [0,armW]x[hallH,H], as one CCW
// rectilinear polygon with a single reflex vertex.
func lHallPoly(w, h float64) geom.Polygon {
	return geom.Polygon{
		geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, hallH),
		geom.Pt(armW, hallH), geom.Pt(armW, h), geom.Pt(0, h),
	}
}
