package spacegen

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"indoorsq/internal/indoor"
)

// sweepParams enumerates a varied parameter sample: every hallway
// topology, with and without decomposition, one-way doors, imbalance,
// and multiple floors.
func sweepParams() []Params {
	var out []Params
	for _, hall := range []HallKind{HallStraight, HallL, HallComb} {
		for _, dec := range []bool{false, true} {
			if dec && hall != HallL {
				continue
			}
			out = append(out,
				Params{Floors: 1, Rows: 1, Cols: 2, Hall: hall, Decompose: dec},
				Params{Floors: 2, Rows: 2, Cols: 3, Hall: hall, Decompose: dec,
					ExtraDoors: 4, OneWayFrac: 0.5, Imbalance: 0.8},
				Params{Floors: 4, Rows: 3, Cols: 4, Hall: hall, Decompose: dec,
					ExtraDoors: 8, OneWayFrac: 1, Imbalance: 1, StairLength: 9},
			)
		}
	}
	return out
}

// TestGeneratedSpacesPassCheck is the generator's core contract: every
// normalized parameter set over many seeds yields a space whose deep
// diagnostics (overlaps, door boundaries, reachability) are clean.
func TestGeneratedSpacesPassCheck(t *testing.T) {
	for _, p := range sweepParams() {
		for seed := int64(1); seed <= 8; seed++ {
			sp, err := Generate(seed, p)
			if err != nil {
				t.Fatalf("seed=%d params=%s: %v", seed, p, err)
			}
			if errs := sp.Check(); len(errs) != 0 {
				t.Fatalf("seed=%d params=%s: Check: %v", seed, p, errs)
			}
		}
	}
}

// TestGenerateDeterministicAcrossGOMAXPROCS locks the PR 1 determinism
// guarantee onto the generator: identical (seed, Params) produce
// byte-identical serialized spaces regardless of GOMAXPROCS.
func TestGenerateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	p := Params{Floors: 3, Rows: 3, Cols: 4, Hall: HallL, Decompose: true,
		ExtraDoors: 6, OneWayFrac: 0.4, Imbalance: 0.9}
	for seed := int64(1); seed <= 5; seed++ {
		prev := runtime.GOMAXPROCS(1)
		one := encode(t, seed, p)
		runtime.GOMAXPROCS(8)
		eight := encode(t, seed, p)
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(one, eight) {
			t.Fatalf("seed=%d params=%s: serialized space differs between GOMAXPROCS 1 and 8", seed, p)
		}
		if again := encode(t, seed, p); !bytes.Equal(one, again) {
			t.Fatalf("seed=%d params=%s: serialized space differs between two runs", seed, p)
		}
	}
	if bytes.Equal(encode(t, 1, p), encode(t, 2, p)) {
		t.Fatalf("params=%s: different seeds produced identical spaces", p)
	}
}

func encode(t *testing.T, seed int64, p Params) []byte {
	t.Helper()
	sp, err := Generate(seed, p)
	if err != nil {
		t.Fatalf("seed=%d params=%s: %v", seed, p, err)
	}
	var buf bytes.Buffer
	if err := indoor.EncodeSpace(&buf, sp); err != nil {
		t.Fatalf("seed=%d params=%s: encode: %v", seed, p, err)
	}
	return buf.Bytes()
}

// TestNormalizeClamps verifies arbitrary parameters land in documented
// ranges and that ParamsFromBytes is idempotent under Normalize.
func TestNormalizeClamps(t *testing.T) {
	wild := Params{Floors: -3, Rows: 9999, Cols: 0, Hall: HallKind(250),
		ExtraDoors: -1, OneWayFrac: 7, Imbalance: -2, StairLength: 100, Objects: 1 << 20}
	p := wild.Normalize()
	if p.Floors < 1 || p.Floors > 4 || p.Rows < 1 || p.Rows > 512 || p.Cols < 2 || p.Cols > 512 {
		t.Fatalf("grid out of range: %s", p)
	}
	if p.Hall >= numHallKinds {
		t.Fatalf("hall kind out of range: %s", p)
	}
	if p.OneWayFrac < 0 || p.OneWayFrac > 1 || p.Imbalance < 0 || p.Imbalance > 1 {
		t.Fatalf("fractions out of range: %s", p)
	}
	if p.StairLength < 3 || p.StairLength > 12 || p.Objects < 0 || p.Objects > 64 {
		t.Fatalf("stair/objects out of range: %s", p)
	}
	if _, err := Generate(7, wild); err != nil {
		t.Fatalf("Generate must normalize internally: %v", err)
	}
	raw := []byte{9, 200, 13, 77, 4, 250, 3, 1, 99, 31}
	if got, want := ParamsFromBytes(raw), ParamsFromBytes(raw).Normalize(); got != want {
		t.Fatalf("ParamsFromBytes not normalized: %s vs %s", got, want)
	}
}

// TestObjectsDeterministicAndValid checks seeded object placement: the
// same seed reproduces the same workload, every object lies in its
// declared (non-staircase) partition, and ids are dense.
func TestObjectsDeterministicAndValid(t *testing.T) {
	sp, err := Generate(11, Params{Floors: 2, Rows: 2, Cols: 3, Hall: HallL, ExtraDoors: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := Objects(sp, 42, 25)
	b := Objects(sp, 42, 25)
	if len(a) != 25 {
		t.Fatalf("placed %d objects, want 25", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs across identically-seeded runs: %+v vs %+v", i, a[i], b[i])
		}
		part := sp.Partition(a[i].Part)
		if part.Kind == indoor.Staircase {
			t.Fatalf("object %d placed in a staircase", i)
		}
		if !part.Poly.Contains(a[i].Loc.XY()) || a[i].Loc.Floor != part.Floor {
			t.Fatalf("object %d at %+v outside its partition %d", i, a[i].Loc, a[i].Part)
		}
		if a[i].ID != int32(i) {
			t.Fatalf("object ids not dense: %d at index %d", a[i].ID, i)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p := Point(sp, rng)
		if !sp.Contains(p) {
			t.Fatalf("Point returned non-indoor point %+v", p)
		}
	}
}
