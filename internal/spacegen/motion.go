package spacegen

import (
	"math/rand"

	"indoorsq/internal/indoor"
)

// Motion is one generated position report of a moving object. It mirrors
// moving.Update field for field without importing that package (the moving
// tests import spacegen, so the dependency must point this way); callers
// feeding a moving.Monitor or moving.Stream convert trivially.
type Motion struct {
	ID   int32
	Loc  indoor.Point
	Part indoor.PartitionID
	T    float64
}

// MotionStream deterministically generates steps position reports of n
// objects random-walking through sp. Each step picks one object and either
// jitters it inside its current partition or (hopFrac of the time) hops it
// through one of the partition's leave doors into an adjacent enterable
// partition, so the stream exercises both same-partition re-evaluation and
// partition crossings. Every report's Part hosts its Loc, and timestamps
// are strictly increasing (t0 + (i+1)*dt) — the precondition under which
// moving.Stream's batched ingestion is order-deterministic. Identical
// arguments always produce the identical stream.
func MotionStream(sp *indoor.Space, seed int64, n, steps int, t0, dt float64, hopFrac float64) []Motion {
	rng := rand.New(rand.NewSource(seed))
	objs := Objects(sp, seed, n)
	out := make([]Motion, 0, steps)
	for i := 0; i < steps; i++ {
		o := &objs[rng.Intn(len(objs))]
		part := sp.Partition(o.Part)
		if rng.Float64() < hopFrac && len(part.Leave) > 0 {
			d := part.Leave[rng.Intn(len(part.Leave))]
			if tgts := sp.Door(d).Enterable; len(tgts) > 0 {
				v := tgts[rng.Intn(len(tgts))]
				if p, ok := pointIn(sp, v, rng); ok {
					o.Part, o.Loc = v, p
				}
			}
		} else if p, ok := pointIn(sp, o.Part, rng); ok {
			o.Loc = p
		}
		out = append(out, Motion{ID: o.ID, Loc: o.Loc, Part: o.Part, T: t0 + float64(i+1)*dt})
	}
	return out
}

// pointIn samples a point hosted by partition v by bounded rejection over
// its MBR; ok is false when the polygon is too thin to hit, in which case
// the walker simply stays put this step.
func pointIn(sp *indoor.Space, v indoor.PartitionID, rng *rand.Rand) (indoor.Point, bool) {
	part := sp.Partition(v)
	mbr := part.MBR
	for try := 0; try < 64; try++ {
		x := mbr.MinX + rng.Float64()*mbr.Width()
		y := mbr.MinY + rng.Float64()*mbr.Height()
		p := indoor.At(x, y, part.Floor)
		if part.Poly.Contains(p.XY()) {
			return p, true
		}
	}
	return indoor.Point{}, false
}
