package spacegen

import (
	"bytes"
	"testing"

	"indoorsq/internal/indoor"
)

// FuzzGenerate lets the fuzzer explore the space of spaces: arbitrary
// bytes decode into normalized generator parameters, and every decoded
// space must pass deep validation and regenerate byte-identically.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{1, 2, 3, 1, 4, 2, 3, 1, 5, 20})
	f.Add(int64(3), []byte{3, 4, 4, 0, 7, 4, 4, 0, 9, 30})
	f.Add(int64(-9), []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		p := ParamsFromBytes(raw)
		sp, err := Generate(seed, p)
		if err != nil {
			t.Fatalf("seed=%d params=%s: %v", seed, p, err)
		}
		if errs := sp.Check(); len(errs) != 0 {
			t.Fatalf("seed=%d params=%s: Check: %v", seed, p, errs)
		}
		var a, b bytes.Buffer
		if err := indoor.EncodeSpace(&a, sp); err != nil {
			t.Fatalf("seed=%d params=%s: encode: %v", seed, p, err)
		}
		sp2, err := Generate(seed, p)
		if err != nil {
			t.Fatalf("seed=%d params=%s: regenerate: %v", seed, p, err)
		}
		if err := indoor.EncodeSpace(&b, sp2); err != nil {
			t.Fatalf("seed=%d params=%s: re-encode: %v", seed, p, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed=%d params=%s: regeneration is not byte-identical", seed, p)
		}
	})
}
