package spacegen

import (
	"math/rand"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// Objects deterministically scatters n objects over the non-staircase
// partitions of sp by seeded rejection sampling. Object ids are dense
// (0..n-1) and each Part field names the partition the point was drawn
// in, matching what HostPartition resolves for interior points.
func Objects(sp *indoor.Space, seed int64, n int) []query.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]query.Object, 0, n)
	for guard := 0; len(objs) < n && guard < 1000*(n+1); guard++ {
		v := indoor.PartitionID(rng.Intn(sp.NumPartitions()))
		part := sp.Partition(v)
		if part.Kind == indoor.Staircase {
			continue
		}
		mbr := part.MBR
		x := mbr.MinX + rng.Float64()*mbr.Width()
		y := mbr.MinY + rng.Float64()*mbr.Height()
		p := indoor.At(x, y, part.Floor)
		if !part.Poly.Contains(p.XY()) {
			continue
		}
		objs = append(objs, query.Object{ID: int32(len(objs)), Loc: p, Part: v})
	}
	return objs
}

// Point deterministically draws one valid indoor point of sp.
func Point(sp *indoor.Space, rng *rand.Rand) indoor.Point {
	for {
		v := indoor.PartitionID(rng.Intn(sp.NumPartitions()))
		part := sp.Partition(v)
		if part.Kind == indoor.Staircase {
			continue
		}
		mbr := part.MBR
		x := mbr.MinX + rng.Float64()*mbr.Width()
		y := mbr.MinY + rng.Float64()*mbr.Height()
		p := indoor.At(x, y, part.Floor)
		if part.Poly.Contains(p.XY()) {
			return p
		}
	}
}
