// Package route plans multi-stop indoor walks on top of any query engine's
// shortest-path primitive: deliveries, patrols, or errand runs visiting a
// set of waypoints. Ordered walks concatenate SPDQ legs; Optimized solves
// the order exactly with Held–Karp dynamic programming over the pairwise
// indoor-distance matrix (asymmetric distances — unidirectional doors — are
// handled naturally).
package route

import (
	"context"
	"fmt"
	"math"

	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// MaxStops bounds Optimized's waypoint count (Held–Karp is O(2^n · n^2)).
const MaxStops = 12

// Planner builds multi-stop routes over one engine. Optimized's O(n²)
// pairwise legs run through a concurrent batch executor — engines are
// read-only at query time — so the planner itself stays safe for
// concurrent use.
type Planner struct {
	eng  query.Engine
	pool exec.Pool
}

// New returns a planner over the engine.
func New(eng query.Engine) *Planner { return &Planner{eng: eng} }

// concat appends leg to walk: doors are joined and the distance summed.
func concat(walk *query.Path, leg query.Path) {
	walk.Doors = append(walk.Doors, leg.Doors...)
	walk.Dist += leg.Dist
}

// assemble concatenates legs into one walk, preallocating the door slice
// from the summed leg lengths so concat never regrows it.
func assemble(p, q indoor.Point, legs ...query.Path) query.Path {
	total := 0
	for i := range legs {
		total += len(legs[i].Doors)
	}
	walk := query.Path{Source: p, Target: q, Doors: make([]indoor.DoorID, 0, total)}
	for i := range legs {
		concat(&walk, legs[i])
	}
	return walk
}

// Via returns the walk p -> stops[0] -> ... -> stops[n-1] -> q visiting the
// stops in the given order.
func (pl *Planner) Via(p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, error) {
	return pl.ViaCtx(context.Background(), p, stops, q, st)
}

// ViaCtx is Via bounded by ctx (and any query.Budget it carries): every SPDQ
// leg runs tracked, so cancellation interrupts the walk mid-leg and the
// budget spans all legs together.
func (pl *Planner) ViaCtx(ctx context.Context, p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, error) {
	st = query.Track(ctx, st)
	if err := st.Interrupted(); err != nil {
		return query.Path{}, err
	}
	legs := make([]query.Path, 0, len(stops)+1)
	cur := p
	for i, s := range stops {
		leg, err := pl.eng.SPD(cur, s, st)
		if err != nil {
			return query.Path{}, fmt.Errorf("route: leg %d: %w", i, err)
		}
		legs = append(legs, leg)
		cur = s
	}
	leg, err := pl.eng.SPD(cur, q, st)
	if err != nil {
		return query.Path{}, fmt.Errorf("route: final leg: %w", err)
	}
	legs = append(legs, leg)
	return assemble(p, q, legs...), nil
}

// Optimized returns the shortest walk p -> (all stops, any order) -> q
// together with the visiting order (indexes into stops). It errors when
// more than MaxStops waypoints are given or any leg is unreachable.
func (pl *Planner) Optimized(p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, []int, error) {
	return pl.OptimizedCtx(context.Background(), p, stops, q, st)
}

// OptimizedCtx is Optimized bounded by ctx: the O(n²) pairwise SPDQ legs fan
// out over the batch executor with ctx threaded to every shard, so
// cancelling ctx interrupts the whole fan-out promptly. A query.Budget
// carried by ctx bounds each leg individually (shards track independently).
func (pl *Planner) OptimizedCtx(ctx context.Context, p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, []int, error) {
	ec := query.AsCtx(pl.eng)
	n := len(stops)
	if n == 0 {
		walk, err := ec.SPDCtx(ctx, p, q, st)
		return walk, nil, err
	}
	if n > MaxStops {
		return query.Path{}, nil, fmt.Errorf("route: at most %d stops, got %d", MaxStops, n)
	}

	// Pairwise legs: from p to each stop, between stops (both directions),
	// and from each stop to q. The O(n²) SPD legs are independent, so they
	// fan out over the batch executor; each leg writes its own slot and the
	// executor reports the lowest-index error, keeping results and error
	// messages identical to the old serial triple loop.
	fromP := make([]query.Path, n)
	toQ := make([]query.Path, n)
	between := make([][]query.Path, n)
	for i := range between {
		between[i] = make([]query.Path, n)
	}
	type legJob struct {
		src, dst indoor.Point
		out      *query.Path
		what     string
	}
	jobs := make([]legJob, 0, n*(n+1))
	for i := range stops {
		jobs = append(jobs,
			legJob{p, stops[i], &fromP[i], fmt.Sprintf("p->stop %d", i)},
			legJob{stops[i], q, &toQ[i], fmt.Sprintf("stop %d->q", i)})
		for j := range stops {
			if i != j {
				jobs = append(jobs, legJob{stops[i], stops[j], &between[i][j], fmt.Sprintf("stop %d->%d", i, j)})
			}
		}
	}
	merged, err := pl.pool.MapCtx(ctx, len(jobs), func(ctx context.Context, i int, shard *query.Stats) error {
		leg, err := ec.SPDCtx(ctx, jobs[i].src, jobs[i].dst, shard)
		if err != nil {
			return fmt.Errorf("route: %s: %w", jobs[i].what, err)
		}
		*jobs[i].out = leg
		return nil
	})
	st.Add(merged)
	if err != nil {
		return query.Path{}, nil, err
	}

	// Held–Karp: dp[mask][i] = best cost from p visiting exactly `mask`,
	// ending at stop i (i in mask).
	size := 1 << n
	dp := make([][]float64, size)
	par := make([][]int8, size)
	for m := range dp {
		dp[m] = make([]float64, n)
		par[m] = make([]int8, n)
		for i := range dp[m] {
			dp[m][i] = math.Inf(1)
			par[m][i] = -1
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<i][i] = fromP[i].Dist
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 || math.IsInf(dp[mask][i], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + between[i][j].Dist; cand < dp[nm][j] {
					dp[nm][j] = cand
					par[nm][j] = int8(i)
				}
			}
		}
	}
	full := size - 1
	best, last := math.Inf(1), -1
	for i := 0; i < n; i++ {
		if cand := dp[full][i] + toQ[i].Dist; cand < best {
			best, last = cand, i
		}
	}
	if last < 0 {
		return query.Path{}, nil, query.ErrUnreachable
	}

	// Recover the visiting order.
	order := make([]int, 0, n)
	for mask, i := full, last; i >= 0; {
		order = append(order, i)
		pi := par[mask][i]
		mask &^= 1 << i
		i = int(pi)
	}
	for a, b := 0, len(order)-1; a < b; a, b = a+1, b-1 {
		order[a], order[b] = order[b], order[a]
	}

	// Assemble the walk from the stored legs.
	legs := make([]query.Path, 0, len(order)+1)
	legs = append(legs, fromP[order[0]])
	for k := 0; k+1 < len(order); k++ {
		legs = append(legs, between[order[k]][order[k+1]])
	}
	legs = append(legs, toQ[order[len(order)-1]])
	walk := assemble(p, q, legs...)
	if math.Abs(walk.Dist-best) > 1e-6 {
		return query.Path{}, nil, fmt.Errorf("route: internal: assembled %g != dp %g", walk.Dist, best)
	}
	return walk, order, nil
}
