// Package route plans multi-stop indoor walks on top of any query engine's
// shortest-path primitive: deliveries, patrols, or errand runs visiting a
// set of waypoints. Ordered walks concatenate SPDQ legs; Optimized solves
// the order exactly with Held–Karp dynamic programming over the pairwise
// indoor-distance matrix (asymmetric distances — unidirectional doors — are
// handled naturally).
package route

import (
	"fmt"
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
)

// MaxStops bounds Optimized's waypoint count (Held–Karp is O(2^n · n^2)).
const MaxStops = 12

// Planner builds multi-stop routes over one engine.
type Planner struct {
	eng query.Engine
}

// New returns a planner over the engine.
func New(eng query.Engine) *Planner { return &Planner{eng: eng} }

// concat appends leg to walk: doors are joined and the distance summed.
func concat(walk *query.Path, leg query.Path) {
	walk.Doors = append(walk.Doors, leg.Doors...)
	walk.Dist += leg.Dist
}

// Via returns the walk p -> stops[0] -> ... -> stops[n-1] -> q visiting the
// stops in the given order.
func (pl *Planner) Via(p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, error) {
	walk := query.Path{Source: p, Target: q}
	cur := p
	for i, s := range stops {
		leg, err := pl.eng.SPD(cur, s, st)
		if err != nil {
			return query.Path{}, fmt.Errorf("route: leg %d: %w", i, err)
		}
		concat(&walk, leg)
		cur = s
	}
	leg, err := pl.eng.SPD(cur, q, st)
	if err != nil {
		return query.Path{}, fmt.Errorf("route: final leg: %w", err)
	}
	concat(&walk, leg)
	return walk, nil
}

// Optimized returns the shortest walk p -> (all stops, any order) -> q
// together with the visiting order (indexes into stops). It errors when
// more than MaxStops waypoints are given or any leg is unreachable.
func (pl *Planner) Optimized(p indoor.Point, stops []indoor.Point, q indoor.Point, st *query.Stats) (query.Path, []int, error) {
	n := len(stops)
	if n == 0 {
		walk, err := pl.eng.SPD(p, q, st)
		return walk, nil, err
	}
	if n > MaxStops {
		return query.Path{}, nil, fmt.Errorf("route: at most %d stops, got %d", MaxStops, n)
	}

	// Pairwise legs: from p to each stop, between stops (both directions),
	// and from each stop to q.
	fromP := make([]query.Path, n)
	toQ := make([]query.Path, n)
	between := make([][]query.Path, n)
	for i := range stops {
		leg, err := pl.eng.SPD(p, stops[i], st)
		if err != nil {
			return query.Path{}, nil, fmt.Errorf("route: p->stop %d: %w", i, err)
		}
		fromP[i] = leg
		leg, err = pl.eng.SPD(stops[i], q, st)
		if err != nil {
			return query.Path{}, nil, fmt.Errorf("route: stop %d->q: %w", i, err)
		}
		toQ[i] = leg
		between[i] = make([]query.Path, n)
		for j := range stops {
			if i == j {
				continue
			}
			leg, err := pl.eng.SPD(stops[i], stops[j], st)
			if err != nil {
				return query.Path{}, nil, fmt.Errorf("route: stop %d->%d: %w", i, j, err)
			}
			between[i][j] = leg
		}
	}

	// Held–Karp: dp[mask][i] = best cost from p visiting exactly `mask`,
	// ending at stop i (i in mask).
	size := 1 << n
	dp := make([][]float64, size)
	par := make([][]int8, size)
	for m := range dp {
		dp[m] = make([]float64, n)
		par[m] = make([]int8, n)
		for i := range dp[m] {
			dp[m][i] = math.Inf(1)
			par[m][i] = -1
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<i][i] = fromP[i].Dist
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 || math.IsInf(dp[mask][i], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					continue
				}
				nm := mask | 1<<j
				if cand := dp[mask][i] + between[i][j].Dist; cand < dp[nm][j] {
					dp[nm][j] = cand
					par[nm][j] = int8(i)
				}
			}
		}
	}
	full := size - 1
	best, last := math.Inf(1), -1
	for i := 0; i < n; i++ {
		if cand := dp[full][i] + toQ[i].Dist; cand < best {
			best, last = cand, i
		}
	}
	if last < 0 {
		return query.Path{}, nil, query.ErrUnreachable
	}

	// Recover the visiting order.
	order := make([]int, 0, n)
	for mask, i := full, last; i >= 0; {
		order = append(order, i)
		pi := par[mask][i]
		mask &^= 1 << i
		i = int(pi)
	}
	for a, b := 0, len(order)-1; a < b; a, b = a+1, b-1 {
		order[a], order[b] = order[b], order[a]
	}

	// Assemble the walk from the stored legs.
	walk := query.Path{Source: p, Target: q}
	concat(&walk, fromP[order[0]])
	for k := 0; k+1 < len(order); k++ {
		concat(&walk, between[order[k]][order[k+1]])
	}
	concat(&walk, toQ[order[len(order)-1]])
	if math.Abs(walk.Dist-best) > 1e-6 {
		return query.Path{}, nil, fmt.Errorf("route: internal: assembled %g != dp %g", walk.Dist, best)
	}
	return walk, order, nil
}
