package route_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestRouteCtxCancelled(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := indoor.At(2.5, 8, 0)
	w := []indoor.Point{indoor.At(7.5, 9, 0)}
	q := indoor.At(12.5, 9, 0)
	if _, err := pl.ViaCtx(ctx, p, w, q, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ViaCtx(cancelled) = %v, want Canceled", err)
	}
	if _, _, err := pl.OptimizedCtx(ctx, p, w, q, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimizedCtx(cancelled) = %v, want Canceled", err)
	}
}

func TestRouteCtxBackgroundEquivalence(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	p := indoor.At(2.5, 8, 0)
	w := []indoor.Point{indoor.At(7.5, 9, 0)}
	q := indoor.At(12.5, 9, 0)
	walk, err := pl.ViaCtx(context.Background(), p, w, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(walk.Dist-21) > 1e-9 {
		t.Fatalf("ViaCtx dist = %g, want 21", walk.Dist)
	}
}
