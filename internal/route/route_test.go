package route_test

import (
	"math"
	"testing"

	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/route"
	"indoorsq/internal/testspaces"
)

func planner(t *testing.T, f *testspaces.Strip) *route.Planner {
	t.Helper()
	eng := idindex.New(f.Space)
	eng.SetObjects(nil)
	return route.New(eng)
}

func TestViaConcatenatesLegs(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	p := indoor.At(2.5, 8, 0)  // R1
	w := indoor.At(7.5, 9, 0)  // R2
	q := indoor.At(12.5, 9, 0) // R3
	walk, err := pl.Via(p, []indoor.Point{w}, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	// p->w = 10 (2 + 5 + 3); w->q = 3 + 5 + 3 = 11.
	if math.Abs(walk.Dist-21) > 1e-9 {
		t.Fatalf("Via dist = %g, want 21", walk.Dist)
	}
	if len(walk.Doors) != 4 {
		t.Fatalf("Via doors = %v", walk.Doors)
	}
}

func TestOptimizedReorders(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	p := indoor.At(1, 5, 0)  // west end of the hall
	q := indoor.At(19, 5, 0) // east end
	// Stops given in a deliberately bad order: far, near.
	stops := []indoor.Point{
		indoor.At(17.5, 9, 0), // R4 (east)
		indoor.At(2.5, 9, 0),  // R1 (west)
	}
	walk, order, err := pl.Optimized(p, stops, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0] (west first)", order)
	}
	// Compare against the naive order.
	naive, err := pl.Via(p, stops, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if walk.Dist >= naive.Dist {
		t.Fatalf("optimized %g should beat naive %g", walk.Dist, naive.Dist)
	}
	// And equals the explicitly good order.
	good, _ := pl.Via(p, []indoor.Point{stops[1], stops[0]}, q, &st)
	if math.Abs(walk.Dist-good.Dist) > 1e-9 {
		t.Fatalf("optimized %g != good order %g", walk.Dist, good.Dist)
	}
}

func TestOptimizedZeroStops(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	walk, order, err := pl.Optimized(indoor.At(1, 5, 0), nil, indoor.At(19, 5, 0), &st)
	if err != nil || len(order) != 0 {
		t.Fatalf("zero stops: %v, %v", order, err)
	}
	if math.Abs(walk.Dist-18) > 1e-9 {
		t.Fatalf("dist = %g", walk.Dist)
	}
}

func TestOptimizedMatchesBruteForce(t *testing.T) {
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	p := indoor.At(7, 1, 0) // R6
	q := indoor.At(15, 2, 0)
	stops := []indoor.Point{
		indoor.At(2.5, 9, 0),  // R1
		indoor.At(12.5, 9, 0), // R3
		indoor.At(2.5, 2, 0),  // R5
	}
	walk, _, err := pl.Optimized(p, stops, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over all 6 permutations.
	best := math.Inf(1)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		ordered := make([]indoor.Point, len(perm))
		for i, pi := range perm {
			ordered[i] = stops[pi]
		}
		w, err := pl.Via(p, ordered, q, &st)
		if err != nil {
			t.Fatal(err)
		}
		if w.Dist < best {
			best = w.Dist
		}
	}
	if math.Abs(walk.Dist-best) > 1e-9 {
		t.Fatalf("Optimized %g != brute force %g", walk.Dist, best)
	}
}

func TestOptimizedRespectsOneWayDoors(t *testing.T) {
	// With the one-way D8, visiting R6 before R7 is cheaper than after.
	f := testspaces.NewStrip()
	pl := planner(t, f)
	var st query.Stats
	p := indoor.At(7.5, 5, 0) // hall
	q := indoor.At(7.5, 5, 0)
	stops := []indoor.Point{
		indoor.At(15, 2, 0), // R7
		indoor.At(7, 2, 0),  // R6
	}
	walk, order, err := pl.Optimized(p, stops, q, &st)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 { // R6 first, then through D8 into R7
		t.Fatalf("order = %v, want R6 first", order)
	}
	if walk.Dist <= 0 {
		t.Fatal("bad dist")
	}
}

func TestErrors(t *testing.T) {
	f := testspaces.NewStrip()
	eng := idmodel.New(f.Space)
	eng.SetObjects(nil)
	pl := route.New(eng)
	var st query.Stats
	if _, err := pl.Via(indoor.At(-1, -1, 0), nil, indoor.At(1, 5, 0), &st); err == nil {
		t.Fatal("outdoor source must fail")
	}
	many := make([]indoor.Point, route.MaxStops+1)
	for i := range many {
		many[i] = indoor.At(1, 5, 0)
	}
	if _, _, err := pl.Optimized(indoor.At(1, 5, 0), many, indoor.At(1, 5, 0), &st); err == nil {
		t.Fatal("too many stops must fail")
	}
}
