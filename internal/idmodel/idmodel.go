// Package idmodel implements IDMODEL, the indoor distance-aware model of
// Lu et al. (ICDE 2012, Sec. 3.1 of the paper): an accessibility graph over
// partitions and doors augmented with two distance mappings, fdv
// (door-to-partition max reach) and fd2d (door-to-door distance within a
// partition), the latter materialized as one dense array per partition
// exactly as prescribed in Sec. 5.3. Query processing expands doors in the
// spirit of Dijkstra's algorithm; RQ and kNNQ follow Algorithms 1–2 of the
// paper's Appendix.
package idmodel

import (
	"math"

	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/traverse"
)

// Model is the IDMODEL engine.
type Model struct {
	sp    *indoor.Space
	g     *traverse.Graph
	store *query.ObjectStore

	// d2d[v] is the fd2d(v,·,·) array: a len(Doors)^2 matrix indexed by the
	// positions of the doors in Partition(v).Doors (the space's DoorIndex
	// mapping). +Inf encodes impossible moves (direction violations).
	d2d [][]float64

	// reach is the SCC condensation + downstream summaries pruning query
	// expansion (see internal/reach); SetReach(nil) disables it.
	reach *reach.Reach

	size int64
}

// New builds the IDMODEL over a space. The fd2d matrices are materialized
// eagerly as the paper prescribes; the per-pair computations are routed
// through the space's door-pair cache, so distances another engine already
// touched are reused rather than recomputed (and vice versa).
func New(sp *indoor.Space) *Model {
	m := &Model{
		sp:  sp,
		d2d: make([][]float64, sp.NumPartitions()),
	}
	for vi := range sp.Partitions() {
		v := indoor.PartitionID(vi)
		part := sp.Partition(v)
		n := len(part.Doors)

		enter := make([]bool, n)
		leave := make([]bool, n)
		for _, d := range part.Enter {
			enter[sp.DoorIndex(v, d)] = true
		}
		for _, d := range part.Leave {
			leave[sp.DoorIndex(v, d)] = true
		}

		mat := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch {
				case i == j:
					mat[i*n+j] = 0
				case enter[i] && leave[j]:
					mat[i*n+j], _ = sp.WithinDoorsCached(v, part.Doors[i], part.Doors[j])
				default:
					mat[i*n+j] = math.Inf(1)
				}
			}
		}
		m.d2d[vi] = mat
		m.size += int64(n*n) * 8
	}
	m.size += int64(sp.NumDoors())*48 + int64(sp.NumPartitions())*32 // graph vertexes/edges
	m.size += sp.BaseSizeBytes() + sp.GeomSizeBytes()

	m.reach = reach.FromSpace(sp, nil, 0)
	m.size += m.reach.SizeBytes()
	m.g = traverse.New(sp, sp.HostPartition, m.d2dStats, false).WithReach(m.reach)
	return m
}

// Space returns the model's underlying indoor space.
func (m *Model) Space() *indoor.Space { return m.sp }

// Reach returns the model's reachability summary (nil after SetReach(nil)).
func (m *Model) Reach() *reach.Reach { return m.reach }

// SetReach swaps the reachability summary used to prune query processing —
// an ablation knob (nil disables pruning) also used by the temporal engine,
// which supplies per-hour summaries built under the schedule's door filter.
// Results are bit-identical with or without a summary.
func (m *Model) SetReach(r *reach.Reach) {
	m.reach = r
	m.g = m.g.WithReach(r)
}

// WithOpenReach is WithOpen with a reachability summary matched to the
// filter: the view prunes with r (which must be conservative for the
// filtered graph — e.g. built by reach.FromSpace under the same open
// filter, or nil for no pruning) instead of the model's full-graph summary.
func (m *Model) WithOpenReach(open func(indoor.DoorID) bool, r *reach.Reach) query.Engine {
	return &openView{Model: m, g: m.g.WithOpen(open).WithReach(r)}
}

// D2D is the fd2d lookup: the distance from door di (entering partition v)
// to door dj (leaving partition v), or +Inf.
func (m *Model) D2D(v indoor.PartitionID, di, dj indoor.DoorID) float64 {
	i := m.sp.DoorIndex(v, di)
	if i < 0 {
		return math.Inf(1)
	}
	j := m.sp.DoorIndex(v, dj)
	if j < 0 {
		return math.Inf(1)
	}
	n := len(m.sp.Partition(v).Doors)
	return m.d2d[v][i*n+j]
}

// d2dStats adapts D2D to the traverse.D2DFunc shape; the model's own dense
// arrays make every lookup a hit-free O(1) read, so no cache counters are
// recorded.
func (m *Model) d2dStats(v indoor.PartitionID, di, dj indoor.DoorID, _ *query.Stats) float64 {
	return m.D2D(v, di, dj)
}

// Name implements query.Engine.
func (m *Model) Name() string { return "IDModel" }

// SetObjects implements query.Engine.
func (m *Model) SetObjects(objs []query.Object) {
	m.store = query.NewObjectStore(m.sp, objs)
}

// Range implements query.Engine (Appendix Algorithm 1).
func (m *Model) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return m.g.Range(m.store, p, r, st)
}

// KNN implements query.Engine (Appendix Algorithm 2).
func (m *Model) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return m.g.KNN(m.store, p, k, st)
}

// SPD implements query.Engine.
func (m *Model) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return m.g.SPD(p, q, st)
}

// SizeBytes implements query.Engine.
func (m *Model) SizeBytes() int64 { return m.size }

// openView is a temporal view of the model: identical structures, but
// query processing skips doors the filter reports closed.
type openView struct {
	*Model
	g *traverse.Graph
}

// WithOpen returns a view of the model that only traverses doors for which
// open reports true — the temporal-variation extension of Sec. 7. The view
// shares the model's structures and object store.
func (m *Model) WithOpen(open func(indoor.DoorID) bool) query.Engine {
	return &openView{Model: m, g: m.g.WithOpen(open)}
}

// Range implements query.Engine under the door filter.
func (v *openView) Range(p indoor.Point, r float64, st *query.Stats) ([]int32, error) {
	return v.g.Range(v.Model.store, p, r, st)
}

// KNN implements query.Engine under the door filter.
func (v *openView) KNN(p indoor.Point, k int, st *query.Stats) ([]query.Neighbor, error) {
	return v.g.KNN(v.Model.store, p, k, st)
}

// SPD implements query.Engine under the door filter.
func (v *openView) SPD(p, q indoor.Point, st *query.Stats) (query.Path, error) {
	return v.g.SPD(p, q, st)
}

// ensureStore lazily creates an empty object store.
func (m *Model) ensureStore() *query.ObjectStore {
	if m.store == nil {
		m.store = query.NewObjectStore(m.sp, nil)
	}
	return m.store
}

// InsertObject implements query.ObjectUpdater.
func (m *Model) InsertObject(o query.Object) bool {
	return m.ensureStore().Insert(m.sp, o)
}

// DeleteObject implements query.ObjectUpdater.
func (m *Model) DeleteObject(id int32) bool {
	return m.ensureStore().Delete(id)
}

// MoveObject implements query.ObjectUpdater.
func (m *Model) MoveObject(id int32, loc indoor.Point, part indoor.PartitionID) bool {
	return m.ensureStore().Move(m.sp, id, loc, part)
}

// KNNFilter returns the k objects nearest to p among those accepted by the
// predicate — the primitive behind boolean keyword kNN queries (Sec. 7).
func (m *Model) KNNFilter(p indoor.Point, k int, accept func(id int32) bool, st *query.Stats) ([]query.Neighbor, error) {
	return m.g.WithFilter(accept).KNN(m.store, p, k, st)
}
