package idmodel_test

import (
	"math"
	"testing"

	"indoorsq/internal/enginetest"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(sp *indoor.Space) query.Engine {
		return idmodel.New(sp)
	})
}

func TestD2DMapping(t *testing.T) {
	f := testspaces.NewStrip()
	m := idmodel.New(f.Space)

	// fd2d within the hall: D1 (enter) to D4 (leave) = 15.
	if d := m.D2D(f.Hall, f.D1, f.D4); math.Abs(d-15) > 1e-9 {
		t.Fatalf("D2D(hall, D1, D4) = %g, want 15", d)
	}
	// Identity.
	if d := m.D2D(f.Hall, f.D1, f.D1); d != 0 {
		t.Fatalf("D2D(hall, D1, D1) = %g, want 0", d)
	}
	// Foreign door.
	if d := m.D2D(f.Hall, f.D8, f.D1); !math.IsInf(d, 1) {
		t.Fatalf("D2D with foreign door = %g, want +Inf", d)
	}
	// Direction: D8 enters R7 but does not leave it, so moving from D7
	// into R7 and out through D8 is impossible.
	if d := m.D2D(f.R7, f.D7, f.D8); !math.IsInf(d, 1) {
		t.Fatalf("D2D through exit-blocked door = %g, want +Inf", d)
	}
	// But entering R6 through D6 and leaving through D8 is allowed.
	if d := m.D2D(f.R6, f.D6, f.D8); math.IsInf(d, 1) {
		t.Fatal("D2D(R6, D6, D8) should be finite")
	}
}

func TestNVDCounting(t *testing.T) {
	f := testspaces.NewStrip()
	m := idmodel.New(f.Space)
	m.SetObjects(nil)

	var st query.Stats
	if _, err := m.SPD(indoor.At(1, 5, 0), indoor.At(19, 5, 0), &st); err != nil {
		t.Fatal(err)
	}
	// Same-partition query can still settle doors cheaper than the direct
	// distance; the count must be bounded by the total door count.
	if st.VisitedDoors < 0 || st.VisitedDoors > f.Space.NumDoors() {
		t.Fatalf("NVD = %d out of range", st.VisitedDoors)
	}

	st.Reset()
	if _, err := m.SPD(indoor.At(2.5, 8, 0), indoor.At(17.5, 8, 0), &st); err != nil {
		t.Fatal(err)
	}
	if st.VisitedDoors == 0 {
		t.Fatal("cross-partition SPD should visit doors")
	}
	if st.WorkBytes == 0 {
		t.Fatal("SPD should account transient memory")
	}
}

func TestSizeGrowsWithSpace(t *testing.T) {
	small := idmodel.New(testspaces.NewStrip().Space)
	big := idmodel.New(testspaces.RandomGrid(1, 6, 6, 3, 10, 0))
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size(big)=%d should exceed size(small)=%d", big.SizeBytes(), small.SizeBytes())
	}
}
