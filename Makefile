# Development workflow. `make verify` is the tier-1 gate: build, vet,
# formatting, the full test suite, and the race subset that hammers the
# engines and the batch executor concurrently. `make verify-full` adds
# the per-package coverage report and a fuzz smoke pass over every
# native fuzz target.

GO ?= go
FUZZTIME ?= 30s

# pkg:Target pairs smoke-tested by fuzz-smoke.
FUZZ_TARGETS = \
	./internal/geom:FuzzSegmentInside \
	./internal/geom:FuzzVGraphDist \
	./internal/query:FuzzTopK \
	./internal/spacegen:FuzzGenerate \
	./internal/enginetest:FuzzDifferentialEngines \
	./internal/moving:FuzzMonitorStream

.PHONY: verify verify-full build vet fmt-check test race cover fuzz-smoke bench-smoke bench-pr2 bench-pr3 bench-pr4 bench-pr6 bench-pr7 bench-pr7-smoke bench-pr8 bench-pr8-smoke bench-pr9 bench-pr9-smoke bench-pr10 bench-pr10-smoke

verify: build vet fmt-check test race

verify-full: verify cover fuzz-smoke bench-smoke bench-pr7-smoke bench-pr8-smoke bench-pr9-smoke bench-pr10-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./internal/enginetest/ ./internal/exec/ ./internal/obs/ ./internal/server/ ./internal/spacegen/ ./internal/oracle/ ./internal/doorgraph/ ./internal/reach/ ./internal/temporal/ ./internal/moving/ ./internal/tenant/

# Per-package coverage, teed to COVER_REPORT.txt for review. The moving
# package (the continuous-query engine) carries a hard floor: its harness
# is the PR 10 gate, so falling under 85% fails the build.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./... | tee COVER_REPORT.txt
	$(GO) tool cover -func=cover.out | tail -1 | tee -a COVER_REPORT.txt
	@pct=$$(grep 'indoorsq/internal/moving\b' COVER_REPORT.txt | grep -o '[0-9.]*% of statements' | grep -o '^[0-9.]*'); \
	if [ -z "$$pct" ]; then echo "cover: no coverage row for internal/moving"; exit 1; fi; \
	ok=$$(awk -v p="$$pct" 'BEGIN { print (p >= 85) ? 1 : 0 }'); \
	if [ "$$ok" != "1" ]; then echo "cover: internal/moving at $$pct% < 85% floor"; exit 1; fi; \
	echo "cover: internal/moving at $$pct% (floor 85%)"

# Short fuzz pass over every native fuzz target ($(FUZZTIME) each);
# -short keeps the non-fuzz parts of each package out of the run.
fuzz-smoke:
	@set -e; for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%:*}; fn=$${entry#*:}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test -short -run '^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

# Regenerates the distance-cache before/after report of PR 2.
bench-pr2:
	$(GO) run ./cmd/isqcachebench -o BENCH_PR2.json

# Regenerates the context-tracking overhead report of PR 3.
bench-pr3:
	$(GO) run ./cmd/isqctxbench -o BENCH_PR3.json

# Regenerates the observability-layer overhead report of PR 4.
bench-pr4:
	$(GO) run ./cmd/isqobsbench -o BENCH_PR4.json

# Regenerates the CSR door-graph / Dijkstra hot-path report of PR 6.
# Covers venues at ~10^3, 10^4 and 10^5 doors; the 100k build takes a while.
bench-pr6:
	$(GO) run ./cmd/isqgraphbench -o BENCH_PR6.json

# Regenerates the reachability-pruning report of PR 7: visited doors and
# ns/op, pruned vs unpruned, across one-way fractions and a closed-wing
# temporal schedule. Answers are asserted identical in-tool.
bench-pr7:
	$(GO) run ./cmd/isqreachbench -o BENCH_PR7.json

# Tiny-venue run of the same tool; keeps it from rotting and re-asserts
# pruned/unpruned answer equality under verify-full.
bench-pr7-smoke:
	$(GO) run ./cmd/isqreachbench -smoke

# Regenerates the snapshot subsystem report of PR 8: cold engine build vs
# snapshot load (wall clock, peak RSS via re-exec'd children) at ~10^3,
# 10^4 and 10^5 doors, plus POST /v1/swap latency under concurrent load.
bench-pr8:
	$(GO) run ./cmd/isqsnapbench -o BENCH_PR8.json

# Tiny-venue pass of the same tool for verify-full: one build/save/load
# cycle asserting loaded engines answer bit-identically, plus three
# hot swaps under load.
bench-pr8-smoke:
	$(GO) run ./cmd/isqsnapbench -smoke

# Regenerates the multi-venue routing report of PR 9: routed vs pinned
# p95 per engine on a skewed three-venue workload, with each venue's final
# per-query-class decision table. Answers are asserted identical in-tool.
bench-pr9:
	$(GO) run ./cmd/isqroutebench -o BENCH_PR9.json

# Tiny two-venue pass of the same tool for verify-full: re-asserts
# routed answers match every pinned engine and the routers reach a
# decision for all three query classes.
bench-pr9-smoke:
	$(GO) run ./cmd/isqroutebench -smoke

# Regenerates the streaming continuous-query report of PR 10: the sharded
# inverted-index stream vs the scan-all baseline at 10^5-10^6 objects and
# 10^3-10^4 standing monitors, with event-stream equality asserted before
# timing and the >= 10x speedup bound enforced at 10^4 monitors.
bench-pr10:
	$(GO) run ./cmd/isqmovebench -o BENCH_PR10.json

# Tiny-venue pass of the same tool for verify-full: re-asserts the indexed
# and scan-all event streams are identical, no speedup bound.
bench-pr10-smoke:
	$(GO) run ./cmd/isqmovebench -smoke

# Quick compile-and-run pass over the heap and door-graph benchmarks: a
# handful of iterations each, just to keep the benchmark code from rotting.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=10x ./internal/pq/ ./internal/doorgraph/
