# Development workflow. `make verify` is the tier-1 gate: build, vet,
# formatting, the full test suite, and the race subset that hammers the
# engines and the batch executor concurrently.

GO ?= go

.PHONY: verify build vet fmt-check test race bench-pr2 bench-pr3 bench-pr4

verify: build vet fmt-check test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./internal/enginetest/ ./internal/exec/ ./internal/obs/ ./internal/server/

# Regenerates the distance-cache before/after report of PR 2.
bench-pr2:
	$(GO) run ./cmd/isqcachebench -o BENCH_PR2.json

# Regenerates the context-tracking overhead report of PR 3.
bench-pr3:
	$(GO) run ./cmd/isqctxbench -o BENCH_PR3.json

# Regenerates the observability-layer overhead report of PR 4.
bench-pr4:
	$(GO) run ./cmd/isqobsbench -o BENCH_PR4.json
