package indoorsq_test

import (
	"bytes"
	"math"
	"testing"

	"indoorsq"
)

// buildTwoRooms assembles a minimal space through the public API.
func buildTwoRooms(t *testing.T) *indoorsq.Space {
	t.Helper()
	b := indoorsq.NewBuilder("api-demo", 1)
	r1 := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(0, 0, 10, 10)))
	r2 := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(10, 0, 20, 10)))
	d := b.AddDoor(indoorsq.Pt(10, 5), 0)
	b.ConnectBoth(d, r1, r2)
	sp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestPublicBuilderAndEngines(t *testing.T) {
	sp := buildTwoRooms(t)
	ctors := []func() indoorsq.Engine{
		func() indoorsq.Engine { return indoorsq.NewIDModel(sp) },
		func() indoorsq.Engine { return indoorsq.NewIDIndex(sp) },
		func() indoorsq.Engine { return indoorsq.NewCIndex(sp) },
		func() indoorsq.Engine { return indoorsq.NewIPTree(sp, 0) },
		func() indoorsq.Engine { return indoorsq.NewVIPTree(sp, 0) },
	}
	p := indoorsq.At(2, 5, 0)
	q := indoorsq.At(18, 5, 0)
	want := 8.0 + 8.0 // via the door at (10,5)
	for _, ctor := range ctors {
		eng := ctor()
		eng.SetObjects([]indoorsq.Object{
			{ID: 1, Loc: q, Part: 1},
		})
		var st indoorsq.Stats
		path, err := eng.SPD(p, q, &st)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if math.Abs(path.Dist-want) > 1e-9 {
			t.Fatalf("%s SPD = %g, want %g", eng.Name(), path.Dist, want)
		}
		nn, err := eng.KNN(p, 1, &st)
		if err != nil || len(nn) != 1 || nn[0].ID != 1 {
			t.Fatalf("%s KNN = %v, %v", eng.Name(), nn, err)
		}
		ids, err := eng.Range(p, want+1, &st)
		if err != nil || len(ids) != 1 {
			t.Fatalf("%s Range = %v, %v", eng.Name(), ids, err)
		}
	}
}

func TestPublicDataset(t *testing.T) {
	info, err := indoorsq.Dataset("CPH")
	if err != nil {
		t.Fatal(err)
	}
	if info.Space.NumPartitions() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := indoorsq.Dataset("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if len(indoorsq.DatasetNames()) != 12 {
		t.Fatalf("DatasetNames = %v", indoorsq.DatasetNames())
	}
}

func TestPublicWorkload(t *testing.T) {
	sp := buildTwoRooms(t)
	w := indoorsq.NewWorkload(sp, 1)
	objs := w.Objects(10)
	if len(objs) != 10 {
		t.Fatalf("objects = %d", len(objs))
	}
	for _, o := range objs {
		if !sp.Contains(o.Loc) {
			t.Fatalf("object %v outside space", o)
		}
	}
}

func TestPublicErrors(t *testing.T) {
	sp := buildTwoRooms(t)
	eng := indoorsq.NewIDModel(sp)
	eng.SetObjects(nil)
	if _, err := eng.Range(indoorsq.At(-5, -5, 0), 1, nil); err != indoorsq.ErrNoHost {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestPublicTemporal(t *testing.T) {
	sp := buildTwoRooms(t)
	sch := indoorsq.NewSchedule()
	sch.Set(0, indoorsq.OpenInterval{Open: 9, Close: 17})

	day := indoorsq.NewTemporalIDModel(indoorsq.NewIDModel(sp), sch, 12)
	night := indoorsq.NewTemporalCIndex(indoorsq.NewCIndex(sp), sch, 23)
	day.SetObjects(nil)
	night.SetObjects(nil)

	p, q := indoorsq.At(2, 5, 0), indoorsq.At(18, 5, 0)
	if _, err := day.SPD(p, q, nil); err != nil {
		t.Fatalf("daytime route: %v", err)
	}
	if _, err := night.SPD(p, q, nil); err != indoorsq.ErrUnreachable {
		t.Fatalf("night route err = %v, want ErrUnreachable", err)
	}
}

func TestPublicCodec(t *testing.T) {
	sp := buildTwoRooms(t)
	var buf bytes.Buffer
	if err := indoorsq.EncodeSpace(&buf, sp); err != nil {
		t.Fatal(err)
	}
	got, err := indoorsq.DecodeSpace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDoors() != sp.NumDoors() || got.NumPartitions() != sp.NumPartitions() {
		t.Fatal("round trip changed the space")
	}
}

func TestPublicObjectUpdates(t *testing.T) {
	sp := buildTwoRooms(t)
	eng := indoorsq.NewVIPTree(sp, 0)
	var up indoorsq.ObjectUpdater = eng
	if !up.InsertObject(indoorsq.Object{ID: 9, Loc: indoorsq.At(18, 5, 0), Part: 1}) {
		t.Fatal("insert failed")
	}
	nn, err := eng.KNN(indoorsq.At(2, 5, 0), 1, nil)
	if err != nil || len(nn) != 1 || nn[0].ID != 9 {
		t.Fatalf("KNN after insert = %v, %v", nn, err)
	}
	if !up.DeleteObject(9) {
		t.Fatal("delete failed")
	}
	nn, _ = eng.KNN(indoorsq.At(2, 5, 0), 1, nil)
	if len(nn) != 0 {
		t.Fatalf("KNN after delete = %v", nn)
	}
}
