// Indoor routing at the airport, including a one-way security checkpoint:
// the directional-door scenario of the paper's Figure 1 (door d12). The
// program extends the CPH-style venue with a security door that can only be
// crossed landside -> airside and shows that the shortest route back differs
// from the route in.
package main

import (
	"fmt"
	"log"

	"indoorsq"
)

func main() {
	// A compact terminal: landside hall, security room, airside hall, gates.
	//
	//	y=30 +--gate A--+--gate B--+--gate C--+
	//	y=20 +--------- airside hall ---------+
	//	     |  (security: one-way in)  exit  |
	//	y=10 +--------- landside hall --------+
	//	y=0  +--------------------------------+
	b := indoorsq.NewBuilder("terminal", 1)
	land := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 0, 90, 10)))
	security := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(10, 10, 30, 20)))
	exitCorr := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(60, 10, 80, 20)))
	air := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 20, 90, 30)))
	gates := make([]indoorsq.PartitionID, 3)
	for i := range gates {
		x0 := float64(i) * 30
		gates[i] = b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(x0, 30, x0+30, 40)))
	}

	// Security: landside -> checkpoint -> airside, strictly one-way.
	dIn := b.AddDoor(indoorsq.Pt(20, 10), 0)
	b.ConnectOneWay(dIn, land, security)
	dScreen := b.AddDoor(indoorsq.Pt(20, 20), 0)
	b.ConnectOneWay(dScreen, security, air)
	// Exit corridor: airside -> exit -> landside, also one-way.
	dOut := b.AddDoor(indoorsq.Pt(70, 20), 0)
	b.ConnectOneWay(dOut, air, exitCorr)
	dRelease := b.AddDoor(indoorsq.Pt(70, 10), 0)
	b.ConnectOneWay(dRelease, exitCorr, land)
	// Gates open onto the airside hall.
	for i, g := range gates {
		d := b.AddDoor(indoorsq.Pt(float64(i)*30+15, 30), 0)
		b.ConnectBoth(d, air, g)
	}

	sp, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	router := indoorsq.NewVIPTree(sp, 0)
	router.SetObjects(nil)

	checkin := indoorsq.At(5, 5, 0) // landside, near the entrance
	gateC := indoorsq.At(75, 35, 0) // gate C
	var st indoorsq.Stats

	out, err := router.SPD(checkin, gateC, &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("check-in -> gate C: %.1fm via doors %v\n", out.Dist, out.Doors)

	back, err := router.SPD(gateC, checkin, &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate C -> check-in: %.1fm via doors %v\n", back.Dist, back.Doors)

	if diff := back.Dist - out.Dist; diff != 0 {
		fmt.Printf("asymmetric distances: the one-way doors make the return %.1fm longer\n", diff)
	}

	// The same routing works on the full benchmark airport.
	info, err := indoorsq.Dataset("CPH")
	if err != nil {
		log.Fatal(err)
	}
	w := indoorsq.NewWorkload(info.Space, 1)
	pair := w.SPDPairs(1500, 1)[0]
	cph := indoorsq.NewVIPTree(info.Space, info.Gamma)
	cph.SetObjects(nil)
	path, err := cph.SPD(pair.P, pair.Q, &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPH: %.0fm route crossing %d doors (target s2t 1500m)\n",
		path.Dist, len(path.Doors))
}
