// Model/index selection: builds all five model/indexes over a chosen
// benchmark dataset and prints construction cost plus per-query-type timing,
// ending with the paper's rule-of-thumb recommendation (Sec. 6,
// "Summary of Findings").
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"indoorsq"
)

func main() {
	name := flag.String("dataset", "CPH", "benchmark dataset (see indoorsq.DatasetNames)")
	flag.Parse()

	info, err := indoorsq.Dataset(*name)
	if err != nil {
		log.Fatal(err)
	}
	sp := info.Space
	stats := sp.SpaceStats(info.Gamma)
	fmt.Printf("%s: %d partitions, %d doors, %d crucial partitions\n\n",
		*name, stats.Partitions, stats.Doors, stats.Crucial)

	objs := indoorsq.NewWorkload(sp, 11).Objects(1000)
	pts := indoorsq.NewWorkload(sp, 12).Points(10)
	pairs := indoorsq.NewWorkload(sp, 13).SPDPairs(info.DefaultS2T, 10)

	builders := []struct {
		name  string
		build func() indoorsq.Engine
	}{
		{"IDModel", func() indoorsq.Engine { return indoorsq.NewIDModel(sp) }},
		{"IDIndex", func() indoorsq.Engine { return indoorsq.NewIDIndex(sp) }},
		{"CIndex", func() indoorsq.Engine { return indoorsq.NewCIndex(sp) }},
		{"IPTree", func() indoorsq.Engine { return indoorsq.NewIPTree(sp, info.Gamma) }},
		{"VIPTree", func() indoorsq.Engine { return indoorsq.NewVIPTree(sp, info.Gamma) }},
	}

	fmt.Printf("%-8s %10s %10s %12s %12s %12s\n",
		"engine", "build", "size", "RQ avg", "kNN avg", "SPDQ avg")
	for _, bld := range builders {
		start := time.Now()
		eng := bld.build()
		buildTime := time.Since(start)
		eng.SetObjects(objs)

		rq := timeQueries(len(pts), func(i int) error {
			_, err := eng.Range(pts[i], info.DefaultR, nil)
			return err
		})
		knn := timeQueries(len(pts), func(i int) error {
			_, err := eng.KNN(pts[i], 10, nil)
			return err
		})
		spd := timeQueries(len(pairs), func(i int) error {
			_, err := eng.SPD(pairs[i].P, pairs[i].Q, nil)
			return err
		})
		fmt.Printf("%-8s %10v %8.2fMB %12v %12v %12v\n",
			bld.name, buildTime.Round(time.Microsecond),
			float64(eng.SizeBytes())/1e6, rq, knn, spd)
	}

	fmt.Println("\nrule of thumb (paper Sec. 6):")
	fmt.Println("  small spaces / few doors      -> IDIndex (fastest, memory-hungry)")
	fmt.Println("  routing, crucial partitions   -> VIPTree")
	fmt.Println("  everything else               -> IDModel (cheap build, balanced)")
}

func timeQueries(n int, fn func(i int) error) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			log.Fatal(err)
		}
	}
	return (time.Since(start) / time.Duration(n)).Round(time.Microsecond)
}
