// Indoor tracking: continuous range monitoring over moving visitors and
// trajectory analytics over the symbolic stay records they produce — the
// moving-object workloads the paper's conclusion names as future work.
package main

import (
	"fmt"
	"log"

	"indoorsq"
)

func main() {
	info, err := indoorsq.Dataset("CPH")
	if err != nil {
		log.Fatal(err)
	}
	sp := info.Space

	// A geofence: alert whenever a visitor comes within 150m (indoor
	// walking distance) of the security desk.
	desk := indoorsq.NewWorkload(sp, 5).Points(1)[0]
	mon := indoorsq.NewMovingMonitor(sp)
	if _, err := mon.Register(1, desk, 150, 0); err != nil {
		log.Fatal(err)
	}

	// Simulate 20 visitors walking shortest paths at 1.4 m/s, sampled once
	// per second for five minutes.
	router := indoorsq.NewIDIndex(sp)
	router.SetObjects(nil)
	sim, err := indoorsq.NewWalkerSim(sp, router, 20, 1.4, 42)
	if err != nil {
		log.Fatal(err)
	}
	var stays []indoorsq.PositionUpdate
	enters, leaves := 0, 0
	for t := 1; t <= 300; t++ {
		samples, err := sim.Step(1)
		if err != nil {
			log.Fatal(err)
		}
		for _, smp := range samples {
			evs, err := mon.Apply(indoorsq.MovingUpdate{ID: smp.ID, Loc: smp.Loc, Part: smp.Part, T: smp.T})
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range evs {
				if e.Enter {
					enters++
				} else {
					leaves++
				}
			}
			stays = append(stays, indoorsq.PositionUpdate{Obj: smp.ID, Part: smp.Part, T: smp.T})
		}
	}
	fmt.Printf("geofence: %d enter events, %d leave events, %d visitors currently inside\n",
		enters, leaves, len(mon.Result(1)))

	// Derive symbolic stay records from the update stream and analyze them.
	logData, err := indoorsq.TrackingLogFromUpdates(stays, 1)
	if err != nil {
		log.Fatal(err)
	}
	top := logData.TopVisited(0, 100, 3)
	fmt.Printf("most visited partitions: ")
	for _, v := range top {
		fmt.Printf("v%d(%d visits) ", v.Part, v.Visits)
	}
	fmt.Println()
	fmt.Printf("co-located visitor pairs: %d\n", len(logData.Join(0, 100)))
	fmt.Printf("crowded partitions (>=2 simultaneous): %d\n", len(logData.Dense(0, 100, 2)))
}
