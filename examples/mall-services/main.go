// Mall services: the Sec. 7 extensions working together — keyword search
// ("find the nearest café with wifi"), keyword-aware routing ("pass an ATM
// and a pharmacy on the way to the exit"), opening hours (the pharmacy
// closes at night), and uncertain locations (a phone seen by indoor
// positioning with a 5m error radius).
package main

import (
	"fmt"
	"log"

	"indoorsq"
)

func main() {
	info, err := indoorsq.Dataset("CPH")
	if err != nil {
		log.Fatal(err)
	}
	sp := info.Space

	// Tag a reproducible object workload with service keywords.
	w := indoorsq.NewWorkload(sp, 99)
	plain := w.Objects(300)
	words := [][]string{
		{"cafe"}, {"cafe", "wifi"}, {"atm"}, {"pharmacy"}, {"gate"}, {"shop"},
	}
	tagged := make([]indoorsq.TaggedObject, len(plain))
	for i, o := range plain {
		tagged[i] = indoorsq.TaggedObject{Object: o, Words: words[i%len(words)]}
	}

	base := indoorsq.NewIDModel(sp)
	kw := indoorsq.NewKeywordIndex(base, sp, tagged)

	me := w.Points(1)[0]
	fmt.Printf("standing at (%.0f, %.0f)\n", me.X, me.Y)

	// Nearest café with wifi.
	nn, err := kw.BooleanKNN(me, 1, nil, "cafe", "wifi")
	if err != nil {
		log.Fatal(err)
	}
	if len(nn) > 0 {
		fmt.Printf("nearest cafe+wifi: object %d at %.0fm\n", nn[0].ID, nn[0].Dist)
	}

	// Route to a far point passing an ATM and a pharmacy.
	target := w.Points(2)[1]
	route, err := kw.Route(me, target, nil, "atm", "pharmacy")
	if err != nil {
		log.Fatal(err)
	}
	plainRoute, _ := kw.Route(me, target, nil)
	fmt.Printf("errand route: %.0fm visiting objects %v (plain route %.0fm)\n",
		route.Path.Dist, route.Visits, plainRoute.Path.Dist)

	// Opening hours: a service corridor closes at night.
	sch := indoorsq.NewSchedule()
	sch.Set(0, indoorsq.OpenInterval{Open: 6, Close: 23})
	night := indoorsq.NewTemporalIDModel(indoorsq.NewIDModel(sp), sch, 2.5)
	night.SetObjects(plain)
	ids, err := night.Range(me, info.DefaultR, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POIs in range at 02:30 with door 0 closed: %d\n", len(ids))

	// Uncertain location: a phone with 5m positioning error.
	host, _ := sp.HostPartition(plain[0].Loc)
	ux := indoorsq.NewUncertainIndex(indoorsq.NewCIndex(sp), sp, []indoorsq.UncertainObject{
		{ID: 42, Center: plain[0].Loc, Radius: 5, Part: host},
	}, 0)
	res, err := ux.ProbRange(me, info.DefaultR, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if len(res) > 0 {
		fmt.Printf("phone 42 within %.0fm with probability %.0f%%\n",
			info.DefaultR, res[0].Value*100)
	} else {
		fmt.Printf("phone 42 not within %.0fm (probability below 20%%)\n", info.DefaultR)
	}
}
