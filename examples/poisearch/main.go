// POI search in a shopping mall: the indoor LBS scenario motivating the
// paper. Loads the HSM (Hangzhou Shopping Mall) benchmark dataset, scatters
// POIs, and answers "shops near me" (range) and "5 nearest POIs" (kNN)
// queries with two different indexes, demonstrating that the choice of
// model/index changes the cost but never the answer.
package main

import (
	"fmt"
	"log"
	"time"

	"indoorsq"
)

func main() {
	info, err := indoorsq.Dataset("HSM")
	if err != nil {
		log.Fatal(err)
	}
	sp := info.Space
	st7 := sp.SpaceStats(info.Gamma)
	fmt.Printf("venue: %d floors, %d partitions, %d doors\n",
		st7.Floors, st7.Partitions, st7.Doors)

	// 1000 POIs at reproducible random indoor locations.
	pois := indoorsq.NewWorkload(sp, 2024).Objects(1000)

	fast := indoorsq.NewIDIndex(sp) // precomputes global door-to-door distances
	lean := indoorsq.NewIDModel(sp) // no precomputation
	fast.SetObjects(pois)
	lean.SetObjects(pois)

	me := indoorsq.NewWorkload(sp, 7).Points(1)[0]
	fmt.Printf("standing at (%.0f, %.0f) on floor %d\n", me.X, me.Y, me.Floor)

	for _, eng := range []indoorsq.Engine{fast, lean} {
		var st indoorsq.Stats
		start := time.Now()
		near, err := eng.Range(me, 300, &st)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s range(300m): %3d POIs in %8v (index %5.1f MB)\n",
			eng.Name(), len(near), elapsed, float64(eng.SizeBytes())/1e6)
	}

	for _, eng := range []indoorsq.Engine{fast, lean} {
		var st indoorsq.Stats
		start := time.Now()
		nn, err := eng.KNN(me, 5, &st)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s 5-NN: ", eng.Name())
		for _, n := range nn {
			fmt.Printf("#%d@%.0fm ", n.ID, n.Dist)
		}
		fmt.Printf(" in %v\n", elapsed)
	}
}
