// Quickstart: build a small two-room-and-hallway venue with the public API,
// index it, and run all four indoor spatial query types.
package main

import (
	"fmt"
	"log"

	"indoorsq"
)

func main() {
	// A one-floor venue:
	//
	//	y=10 +--------+--------+
	//	     | Cafe   | Shop   |
	//	y=6  +--d1----+----d2--+
	//	     |      Hallway    |
	//	y=4  +--------d3-------+
	//	     |     Lounge      |
	//	y=0  +-----------------+
	//	    x=0      8        16
	b := indoorsq.NewBuilder("quickstart", 1)
	hall := b.AddHallway(0, indoorsq.RectPoly(indoorsq.R(0, 4, 16, 6)))
	cafe := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(0, 6, 8, 10)))
	shop := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(8, 6, 16, 10)))
	lounge := b.AddRoom(0, indoorsq.RectPoly(indoorsq.R(0, 0, 16, 4)))

	d1 := b.AddDoor(indoorsq.Pt(2, 6), 0)
	b.ConnectBoth(d1, hall, cafe)
	d2 := b.AddDoor(indoorsq.Pt(14, 6), 0)
	b.ConnectBoth(d2, hall, shop)
	d3 := b.AddDoor(indoorsq.Pt(8, 4), 0)
	b.ConnectBoth(d3, hall, lounge)

	sp, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Index it with the VIP-tree (any of the five engines works identically).
	eng := indoorsq.NewVIPTree(sp, 0)
	eng.SetObjects([]indoorsq.Object{
		{ID: 1, Loc: indoorsq.At(2, 9, 0), Part: cafe},   // espresso machine
		{ID: 2, Loc: indoorsq.At(15, 9, 0), Part: shop},  // cash register
		{ID: 3, Loc: indoorsq.At(8, 2, 0), Part: lounge}, // sofa
		{ID: 4, Loc: indoorsq.At(12, 5, 0), Part: hall},  // info kiosk
	})

	me := indoorsq.At(1, 5, 0) // standing in the hallway, west end

	// Range query: what is within 10 meters of walking?
	var st indoorsq.Stats
	near, err := eng.Range(me, 10, &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 10m: objects %v (visited %d doors)\n", near, st.VisitedDoors)

	// k nearest neighbors.
	nn, err := eng.KNN(me, 2, &st)
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range nn {
		fmt.Printf("NN %d: object %d at %.2fm\n", i+1, n.ID, n.Dist)
	}

	// Shortest path + distance to the cash register.
	path, err := eng.SPD(me, indoorsq.At(15, 9, 0), &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("to the register: %.2fm through %d doors %v\n",
		path.Dist, len(path.Doors), path.Doors)
}
