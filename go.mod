module indoorsq

go 1.22
