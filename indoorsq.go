// Package indoorsq is a library for indoor spatial query processing: the
// modeling, indexing, and querying techniques evaluated in "An Experimental
// Analysis of Indoor Spatial Queries: Modeling, Indexing, and Processing"
// (EDBT 2021).
//
// It provides:
//
//   - an indoor space model (partitions, doors — including unidirectional
//     and virtual doors — staircases, and the topology mappings between
//     them), built through a Builder;
//   - five model/indexes over a space, all implementing the same Engine
//     interface: IDModel, IDIndex, CIndex, IPTree, and VIPTree;
//   - four indoor spatial query types on every engine: range query (RQ),
//     k nearest neighbors (kNNQ), and fused shortest path + shortest
//     distance (SPQ/SDQ);
//   - the benchmark datasets of the paper (SYN, MZB, HSM, CPH and their
//     topology/decomposition variants) plus workload generators;
//   - the full evaluation harness regenerating the paper's figures.
//
// # Quick start
//
//	sp := must(indoorsq.Dataset("CPH")).Space
//	eng := indoorsq.NewVIPTree(sp, 5)
//	eng.SetObjects(objs)
//	nn, _ := eng.KNN(indoorsq.At(100, 300, 0), 5, nil)
//
// See examples/ for runnable programs.
package indoorsq

import (
	"context"
	"io"

	"indoorsq/internal/cindex"
	"indoorsq/internal/dataset"
	"indoorsq/internal/geom"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/keyword"
	"indoorsq/internal/moving"
	"indoorsq/internal/query"
	"indoorsq/internal/route"
	"indoorsq/internal/temporal"
	"indoorsq/internal/trajectory"
	"indoorsq/internal/uncertain"
	"indoorsq/internal/walker"
	"indoorsq/internal/workload"
)

// Core space-model types.
type (
	// Space is an immutable indoor space.
	Space = indoor.Space
	// Builder assembles a Space.
	Builder = indoor.Builder
	// Point is an indoor location (planar coordinates + floor).
	Point = indoor.Point
	// PartitionID identifies a partition.
	PartitionID = indoor.PartitionID
	// DoorID identifies a door.
	DoorID = indoor.DoorID
	// Partition is a room, hallway, or staircase.
	Partition = indoor.Partition
	// Door is a door or open segment, possibly unidirectional.
	Door = indoor.Door
	// Kind classifies partitions.
	Kind = indoor.Kind
	// SpaceStats summarizes a space (Table 4 statistics).
	SpaceStats = indoor.Stats
	// XY is a planar point.
	XY = geom.Point
	// Polygon is a partition footprint in CCW order.
	Polygon = geom.Polygon
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
)

// Partition kinds.
const (
	Room      = indoor.Room
	Hallway   = indoor.Hallway
	Staircase = indoor.Staircase
)

// Concrete engine types (all satisfy Engine).
type (
	// IDModel is the indoor distance-aware model engine.
	IDModel = idmodel.Model
	// IDIndex is the indoor distance-aware index engine.
	IDIndex = idindex.Index
	// CIndex is the composite indoor index engine.
	CIndex = cindex.Index
	// IPTree is the IP-tree / VIP-tree engine.
	IPTree = iptree.Tree
)

// Query framework types.
type (
	// Engine is the uniform interface of all five model/indexes.
	Engine = query.Engine
	// ObjectUpdater is the moving-objects extension implemented by all
	// engines: incremental insert, delete and move of objects.
	ObjectUpdater = query.ObjectUpdater
	// Object is a static indoor object (POI).
	Object = query.Object
	// Neighbor is one kNN result.
	Neighbor = query.Neighbor
	// Path is a shortest path answer.
	Path = query.Path
	// Stats carries per-query cost counters.
	Stats = query.Stats
	// EngineCtx is the context-aware query interface: cancellation,
	// deadlines and work budgets honoured inside the traversal loops.
	EngineCtx = query.EngineCtx
	// Budget bounds a single query's work (doors, bytes, wall clock).
	Budget = query.Budget
	// DatasetInfo is a benchmark dataset with its tuned parameters.
	DatasetInfo = dataset.Info
	// Workload generates reproducible objects and query instances.
	Workload = workload.Generator
	// SPDPair is one shortest-path query instance.
	SPDPair = workload.Pair
)

// Query errors.
var (
	// ErrNoHost marks a query point outside every partition.
	ErrNoHost = query.ErrNoHost
	// ErrUnreachable marks an unreachable shortest-path target.
	ErrUnreachable = query.ErrUnreachable
	// ErrBudgetExhausted marks a query aborted by its work budget.
	ErrBudgetExhausted = query.ErrBudgetExhausted
)

// WithBudget attaches a per-query work budget to ctx; engines running
// under the returned context abort with ErrBudgetExhausted once a limit
// trips. A zero Budget constrains nothing.
func WithBudget(ctx context.Context, b Budget) context.Context { return query.WithBudget(ctx, b) }

// AsCtx returns e's native context-aware interface, or an entry-checked
// adapter for engines that predate EngineCtx.
func AsCtx(e Engine) EngineCtx { return query.AsCtx(e) }

// NewBuilder starts assembling a space with the given floor count.
func NewBuilder(name string, floors int) *Builder { return indoor.NewBuilder(name, floors) }

// At is shorthand for Point{x, y, floor}.
func At(x, y float64, floor int16) Point { return indoor.At(x, y, floor) }

// Pt is shorthand for a planar point.
func Pt(x, y float64) XY { return geom.Pt(x, y) }

// R is shorthand for a rectangle.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// RectPoly returns the polygon covering r.
func RectPoly(r Rect) Polygon { return geom.RectPoly(r) }

// NewIDModel builds the indoor distance-aware model (graph + fdv/fd2d
// mappings; no distance precomputation).
func NewIDModel(sp *Space) *IDModel { return idmodel.New(sp) }

// NewIDIndex builds the indoor distance-aware index (global door-to-door
// distance and ordering matrices).
func NewIDIndex(sp *Space) *IDIndex { return idindex.New(sp) }

// NewCIndex builds the composite indoor index (R-tree geometric layer,
// topological links, object buckets).
func NewCIndex(sp *Space) *CIndex { return cindex.New(sp) }

// NewIPTree builds the indoor partitioning tree with crucial-partition
// threshold gamma (γ <= 0 selects the default).
func NewIPTree(sp *Space, gamma int) *IPTree {
	return iptree.New(sp, iptree.Options{Gamma: gamma})
}

// NewVIPTree builds the vivid IP-tree (IP-tree plus per-leaf ancestor
// materialization).
func NewVIPTree(sp *Space, gamma int) *IPTree {
	return iptree.New(sp, iptree.Options{Gamma: gamma, VIP: true})
}

// Temporal-variation extension (Sec. 7): door open/close schedules,
// supported by the engines without distance precomputation.
type (
	// Schedule maps doors to daily open intervals.
	Schedule = temporal.Schedule
	// OpenInterval is one daily open period in hours of day.
	OpenInterval = temporal.Interval
	// TemporalEngine evaluates queries at a fixed time of day.
	TemporalEngine = temporal.Engine
)

// NewSchedule returns an empty door schedule (all doors open).
func NewSchedule() *Schedule { return temporal.NewSchedule() }

// NewTemporalIDModel wraps an IDModel with a schedule evaluated at hour.
func NewTemporalIDModel(m *IDModel, sch *Schedule, hour float64) *TemporalEngine {
	return temporal.NewIDModel(m, sch, hour)
}

// NewTemporalCIndex wraps a CIndex with a schedule evaluated at hour.
func NewTemporalCIndex(ix *CIndex, sch *Schedule, hour float64) *TemporalEngine {
	return temporal.NewCIndex(ix, sch, hour)
}

// EncodeSpace writes a JSON representation of a space.
func EncodeSpace(w io.Writer, sp *Space) error { return indoor.EncodeSpace(w, sp) }

// SaveIDIndex persists an IDIndex's precomputed matrices so a later process
// can skip its (expensive) construction.
func SaveIDIndex(w io.Writer, ix *IDIndex) error { return ix.Save(w) }

// LoadIDIndex restores an IDIndex saved by SaveIDIndex over the same space.
func LoadIDIndex(r io.Reader, sp *Space) (*IDIndex, error) { return idindex.Load(r, sp) }

// DecodeSpace rebuilds a space from its JSON representation.
func DecodeSpace(r io.Reader) (*Space, error) { return indoor.DecodeSpace(r) }

// Dataset builds (or returns the cached) benchmark dataset by name:
// SYN3/SYN5/SYN7/SYN9, SYN5-, SYN5+, SYN50, MZB, MZB0, MZBD, HSM, CPH.
func Dataset(name string) (*DatasetInfo, error) { return dataset.Build(name) }

// DatasetNames lists the recognized dataset names.
func DatasetNames() []string { return dataset.Names() }

// NewWorkload returns a deterministic workload generator over a space.
func NewWorkload(sp *Space, seed int64) *Workload { return workload.New(sp, seed) }

// Spatial-keyword extension (Sec. 7): keyword-tagged objects, boolean
// keyword kNN/range queries, and keyword-aware routing.
type (
	// KeywordIndex is the keyword layer over an IDModel.
	KeywordIndex = keyword.Index
	// TaggedObject is a static object with keywords.
	TaggedObject = keyword.Tagged
	// KeywordRoute is a keyword-aware routing answer.
	KeywordRoute = keyword.RouteResult
)

// NewKeywordIndex builds the keyword layer over a base IDModel, installing
// the tagged objects into it.
func NewKeywordIndex(base *IDModel, sp *Space, objs []TaggedObject) *KeywordIndex {
	return keyword.New(base, sp, objs)
}

// Uncertain-locations extension (Sec. 7): objects as uncertainty disks,
// probabilistic range and expected-distance kNN queries over CIndex.
type (
	// UncertainObject is an uncertainty disk clipped to its host partition.
	UncertainObject = uncertain.Object
	// UncertainIndex evaluates probabilistic queries.
	UncertainIndex = uncertain.Index
	// UncertainResult pairs an object with a probability or expected distance.
	UncertainResult = uncertain.Result
)

// NewUncertainIndex builds the uncertain-object index over a CIndex with
// the given samples per object (<= 0 selects the default).
func NewUncertainIndex(cx *CIndex, sp *Space, objs []UncertainObject, samples int) *UncertainIndex {
	return uncertain.New(cx, sp, objs, samples)
}

// Moving-objects extension (Sec. 7 / conclusion): position-update streams
// with continuous range monitoring, plus symbolic trajectory analytics.
type (
	// MovingMonitor evaluates continuous range queries over moving objects.
	MovingMonitor = moving.Monitor
	// MovingUpdate is one position report.
	MovingUpdate = moving.Update
	// MovingEvent is a membership change of a continuous query.
	MovingEvent = moving.Event
	// MovingStream is the sharded streaming evaluator: a partition→query
	// inverted index, batched ingestion, standing range and kNN monitors,
	// and delta-push subscriptions.
	MovingStream = moving.Stream
	// MovingStreamOptions configures a MovingStream (shards, workers,
	// optional reachability pruning).
	MovingStreamOptions = moving.StreamOptions
	// MovingSub is a bounded subscription to one monitor's delta stream.
	MovingSub = moving.Sub
	// MonitorInfo describes one registered standing monitor.
	MonitorInfo = moving.MonitorInfo
	// TrackingLog holds symbolic indoor tracking records.
	TrackingLog = trajectory.Log
	// TrackingRecord is one (object, partition, enter, exit) stay.
	TrackingRecord = trajectory.Record
	// PositionUpdate is one symbolic position report.
	PositionUpdate = trajectory.PositionUpdate
)

// NewMovingMonitor returns an empty continuous-query monitor over a space.
func NewMovingMonitor(sp *Space) *MovingMonitor { return moving.NewMonitor(sp) }

// NewMovingStream returns an empty sharded continuous-query stream over a
// space. The zero options pick the default shard and worker counts.
func NewMovingStream(sp *Space, opts MovingStreamOptions) *MovingStream {
	return moving.NewStream(sp, opts)
}

// NewTrackingLog validates and indexes symbolic tracking records.
func NewTrackingLog(recs []TrackingRecord) (*TrackingLog, error) {
	return trajectory.NewLog(recs)
}

// TrackingLogFromUpdates derives stay records from a time-ordered symbolic
// position-update stream.
func TrackingLogFromUpdates(updates []PositionUpdate, closeAfter float64) (*TrackingLog, error) {
	return trajectory.FromUpdates(updates, closeAfter)
}

// Multi-stop routing: deliveries/errands visiting several waypoints, with
// exact order optimization (Held-Karp) over indoor distances.
type (
	// RoutePlanner builds multi-stop walks over any engine.
	RoutePlanner = route.Planner
)

// NewRoutePlanner returns a planner over the engine.
func NewRoutePlanner(eng Engine) *RoutePlanner { return route.New(eng) }

// Pedestrian simulation: agents walking shortest indoor paths, emitting
// position samples for the moving-object and trajectory machinery.
type (
	// WalkerSim simulates pedestrians over a venue.
	WalkerSim = walker.Sim
	// WalkerSample is one emitted position observation.
	WalkerSample = walker.Sample
)

// NewWalkerSim creates a pedestrian simulation with the given agent count
// and walking speed (m/s), routed by eng.
func NewWalkerSim(sp *Space, eng Engine, agents int, speed float64, seed int64) (*WalkerSim, error) {
	return walker.New(sp, eng, agents, speed, seed)
}
