// Benchmarks regenerating the cost profile behind every table and figure of
// the paper's evaluation (Sec. 6). Each benchmark is named after the
// figure(s) it backs; the full swept series (all parameter values and
// datasets) are produced by cmd/isqbench, while these testing.B benchmarks
// give per-query costs at representative points so `go test -bench=.
// -benchmem` tracks regressions of the same quantities.
//
// Mapping:
//
//	Table4                      -> BenchmarkTable4Stats
//	Fig 8/9  (task A)           -> BenchmarkFig8F9Construction
//	Fig 10/11 (B1 RQ)           -> BenchmarkFig10F11RQvsN
//	Fig 12/13 (B1 kNN)          -> BenchmarkFig12F13KNNvsN
//	Fig 14-16 (B1 SPDQ)         -> BenchmarkFig14F15F16SPDQvsN
//	Fig 17/18 (B2 RQ)           -> BenchmarkFig17F18RQvsObjects
//	Fig 19/20 (B2 kNN)          -> BenchmarkFig19F20KNNvsObjects
//	Fig 21/22 (B3)              -> BenchmarkFig21F22RQvsRadius
//	Fig 23/24 (B4)              -> BenchmarkFig23F24KNNvsK
//	Fig 25-27 (B5)              -> BenchmarkFig25F26F27SPDQvsS2T
//	Fig 28-34 (B6 topology)     -> BenchmarkFig28toF34Topology
//	Fig 35-41 (B7 decomposition)-> BenchmarkFig35toF41Decomposition
package indoorsq_test

import (
	"fmt"
	"testing"

	"indoorsq/internal/bench"
	"indoorsq/internal/cindex"
	"indoorsq/internal/dataset"
	"indoorsq/internal/idindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/iptree"
	"indoorsq/internal/keyword"
	"indoorsq/internal/moving"
	"indoorsq/internal/query"
	"indoorsq/internal/route"
	"indoorsq/internal/uncertain"
	"indoorsq/internal/workload"
)

// shared state so engine construction is amortized across benchmarks.
var benchSuite = bench.NewSuite()

func benchObjects(info *dataset.Info, n int) []query.Object {
	return workload.New(info.Space, 1).Objects(n)
}

func benchPoints(info *dataset.Info, n int) []indoor.Point {
	return workload.New(info.Space, 2).Points(n)
}

func benchPairs(info *dataset.Info, s2t float64, n int) []workload.Pair {
	return workload.New(info.Space, 3).SPDPairs(s2t, n)
}

// BenchmarkTable4Stats regenerates the dataset statistics of Table 4.
func BenchmarkTable4Stats(b *testing.B) {
	for _, name := range []string{"SYN5", "MZB", "HSM", "CPH"} {
		info := dataset.Get(name)
		b.Run(name, func(b *testing.B) {
			var doors int
			for i := 0; i < b.N; i++ {
				st := info.Space.SpaceStats(info.Gamma)
				doors = st.Doors
			}
			b.ReportMetric(float64(doors), "doors")
		})
	}
}

// BenchmarkFig8F9Construction measures model/index construction time
// (Figure 9) and reports the resident size (Figure 8) per engine.
func BenchmarkFig8F9Construction(b *testing.B) {
	for _, ds := range []string{"SYN5", "CPH"} {
		info := dataset.Get(ds)
		for _, name := range bench.EngineNames {
			b.Run(ds+"/"+name, func(b *testing.B) {
				var size int64
				for i := 0; i < b.N; i++ {
					eng, err := bench.NewEngine(name, info)
					if err != nil {
						b.Fatal(err)
					}
					size = eng.SizeBytes()
				}
				b.ReportMetric(float64(size)/1e6, "MB")
			})
		}
	}
}

// benchRQ runs one range query per iteration, cycling the instance set.
func benchRQ(b *testing.B, info *dataset.Info, objs []query.Object, r float64) {
	pts := benchPoints(info, 10)
	for _, name := range bench.EngineNames {
		b.Run(name, func(b *testing.B) {
			eng := benchSuite.Engine(info, name)
			eng.SetObjects(objs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Range(pts[i%len(pts)], r, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.SizeBytes())/1e6, "MB")
		})
	}
}

func benchKNN(b *testing.B, info *dataset.Info, objs []query.Object, k int) {
	pts := benchPoints(info, 10)
	for _, name := range bench.EngineNames {
		b.Run(name, func(b *testing.B) {
			eng := benchSuite.Engine(info, name)
			eng.SetObjects(objs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.KNN(pts[i%len(pts)], k, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.SizeBytes())/1e6, "MB")
		})
	}
}

func benchSPD(b *testing.B, info *dataset.Info, s2t float64) {
	pairs := benchPairs(info, s2t, 10)
	for _, name := range bench.EngineNames {
		b.Run(name, func(b *testing.B) {
			eng := benchSuite.Engine(info, name)
			eng.SetObjects(nil)
			var st query.Stats
			var nvd int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset()
				pr := pairs[i%len(pairs)]
				if _, err := eng.SPD(pr.P, pr.Q, &st); err != nil {
					b.Fatal(err)
				}
				nvd = st.VisitedDoors
			}
			b.ReportMetric(float64(nvd), "NVD")
		})
	}
}

// BenchmarkFig10F11RQvsN: B1 range query at the default floor count (SYN5).
func BenchmarkFig10F11RQvsN(b *testing.B) {
	info := dataset.Get("SYN5")
	benchRQ(b, info, benchObjects(info, 1000), info.DefaultR)
}

// BenchmarkFig12F13KNNvsN: B1 kNN at the default floor count.
func BenchmarkFig12F13KNNvsN(b *testing.B) {
	info := dataset.Get("SYN5")
	benchKNN(b, info, benchObjects(info, 1000), 10)
}

// BenchmarkFig14F15F16SPDQvsN: B1 shortest path/distance query.
func BenchmarkFig14F15F16SPDQvsN(b *testing.B) {
	info := dataset.Get("SYN5")
	benchSPD(b, info, info.DefaultS2T)
}

// BenchmarkFig17F18RQvsObjects: B2 range query at the largest object load.
func BenchmarkFig17F18RQvsObjects(b *testing.B) {
	for _, ds := range []string{"MZB", "CPH"} {
		info := dataset.Get(ds)
		b.Run(ds, func(b *testing.B) {
			benchRQ(b, info, benchObjects(info, 2500), info.DefaultR)
		})
	}
}

// BenchmarkFig19F20KNNvsObjects: B2 kNN at the largest object load.
func BenchmarkFig19F20KNNvsObjects(b *testing.B) {
	for _, ds := range []string{"MZB", "CPH"} {
		info := dataset.Get(ds)
		b.Run(ds, func(b *testing.B) {
			benchKNN(b, info, benchObjects(info, 2500), 10)
		})
	}
}

// BenchmarkFig21F22RQvsRadius: B3 range query at the largest radius.
func BenchmarkFig21F22RQvsRadius(b *testing.B) {
	info := dataset.Get("SYN5")
	benchRQ(b, info, benchObjects(info, 1000), info.RValues[len(info.RValues)-1])
}

// BenchmarkFig23F24KNNvsK: B4 kNN at the largest k.
func BenchmarkFig23F24KNNvsK(b *testing.B) {
	info := dataset.Get("SYN5")
	benchKNN(b, info, benchObjects(info, 1000), 100)
}

// BenchmarkFig25F26F27SPDQvsS2T: B5 SPDQ at the largest s2t on HSM.
func BenchmarkFig25F26F27SPDQvsS2T(b *testing.B) {
	info := dataset.Get("HSM")
	benchSPD(b, info, info.S2TValues[len(info.S2TValues)-1])
}

// BenchmarkFig28toF34Topology: B6 queries on the door-dense SYN5+ variant.
func BenchmarkFig28toF34Topology(b *testing.B) {
	info := dataset.Get("SYN5+")
	b.Run("RQ", func(b *testing.B) {
		benchRQ(b, info, benchObjects(info, 1000), info.DefaultR)
	})
	b.Run("SPDQ", func(b *testing.B) {
		benchSPD(b, info, info.DefaultS2T)
	})
}

// BenchmarkFig35toF41Decomposition: B7 queries on the undecomposed variants.
func BenchmarkFig35toF41Decomposition(b *testing.B) {
	for _, ds := range []string{"SYN50", "MZB0"} {
		info := dataset.Get(ds)
		b.Run(ds+"/RQ", func(b *testing.B) {
			benchRQ(b, info, benchObjects(info, 1000), info.DefaultR)
		})
		b.Run(ds+"/SPDQ", func(b *testing.B) {
			benchSPD(b, info, info.DefaultS2T)
		})
	}
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// BenchmarkAblationLeafSize varies the IP-tree leaf capacity: small leaves
// mean deeper trees (more lifting); large leaves mean heavier within-leaf
// Dijkstra.
func BenchmarkAblationLeafSize(b *testing.B) {
	info := dataset.Get("SYN5")
	pairs := benchPairs(info, info.DefaultS2T, 10)
	for _, leaf := range []int{2, 4, 8, 16} {
		tr := iptree.New(info.Space, iptree.Options{Gamma: info.Gamma, LeafSize: leaf, VIP: true})
		tr.SetObjects(nil)
		b.Run(fmt.Sprintf("leaf=%d", leaf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if _, err := tr.SPD(pr.P, pr.Q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.SizeBytes())/1e6, "MB")
		})
	}
}

// BenchmarkAblationGamma varies the crucial-partition threshold on MZB,
// whose >50-door corridor is exactly what γ exists for (Sec. 5.3).
func BenchmarkAblationGamma(b *testing.B) {
	info := dataset.Get("MZB")
	pairs := benchPairs(info, info.DefaultS2T, 10)
	for _, gamma := range []int{2, 4, 16, 1 << 20} {
		tr := iptree.New(info.Space, iptree.Options{Gamma: gamma, VIP: true})
		tr.SetObjects(nil)
		name := fmt.Sprintf("gamma=%d", gamma)
		if gamma == 1<<20 {
			name = "gamma=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if _, err := tr.SPD(pr.P, pr.Q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.SizeBytes())/1e6, "MB")
		})
	}
}

// BenchmarkAblationEuclidPrune toggles CINDEX's R-tree Euclidean pruning;
// the paper finds it does not reduce visited doors under indoor topology.
func BenchmarkAblationEuclidPrune(b *testing.B) {
	info := dataset.Get("SYN5")
	objs := benchObjects(info, 1000)
	pts := benchPoints(info, 10)
	for _, prune := range []bool{true, false} {
		cx := cindex.New(info.Space)
		cx.SetEuclidPrune(prune)
		cx.SetObjects(objs)
		b.Run(fmt.Sprintf("prune=%v", prune), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cx.Range(pts[i%len(pts)], info.DefaultR, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVIPMaterialization isolates the VIP leaf materialization
// against the plain IP-tree on the routing workload it exists for.
func BenchmarkAblationVIPMaterialization(b *testing.B) {
	info := dataset.Get("HSM")
	pairs := benchPairs(info, info.DefaultS2T, 10)
	for _, vip := range []bool{false, true} {
		tr := iptree.New(info.Space, iptree.Options{Gamma: info.Gamma, VIP: vip})
		tr.SetObjects(nil)
		b.Run(fmt.Sprintf("vip=%v", vip), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if _, err := tr.SPD(pr.P, pr.Q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.SizeBytes())/1e6, "MB")
		})
	}
}

// --- Extension benchmarks (Sec. 7 features beyond the paper's figures) ---

// BenchmarkExtKeyword measures boolean keyword kNN and keyword-aware
// routing over the CPH venue.
func BenchmarkExtKeyword(b *testing.B) {
	info := dataset.Get("CPH")
	plain := benchObjects(info, 1000)
	words := [][]string{{"cafe"}, {"cafe", "wifi"}, {"atm"}, {"shop"}}
	tagged := make([]keyword.Tagged, len(plain))
	for i, o := range plain {
		tagged[i] = keyword.Tagged{Object: o, Words: words[i%len(words)]}
	}
	kw := keyword.New(idmodel.New(info.Space), info.Space, tagged)
	pts := benchPoints(info, 10)
	b.Run("BooleanKNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kw.BooleanKNN(pts[i%len(pts)], 5, nil, "cafe", "wifi"); err != nil {
				b.Fatal(err)
			}
		}
	})
	pairs := benchPairs(info, info.DefaultS2T, 10)
	b.Run("Route2Words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			if _, err := kw.Route(pr.P, pr.Q, nil, "atm", "cafe"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtUncertain measures the probabilistic range query.
func BenchmarkExtUncertain(b *testing.B) {
	info := dataset.Get("CPH")
	plain := benchObjects(info, 500)
	uobjs := make([]uncertain.Object, len(plain))
	for i, o := range plain {
		uobjs[i] = uncertain.Object{ID: o.ID, Center: o.Loc, Radius: 5, Part: o.Part}
	}
	ux := uncertain.New(cindex.New(info.Space), info.Space, uobjs, 0)
	pts := benchPoints(info, 10)
	b.Run("ProbRange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ux.ProbRange(pts[i%len(pts)], info.DefaultR, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtMoving measures continuous-query update absorption.
func BenchmarkExtMoving(b *testing.B) {
	info := dataset.Get("CPH")
	mon := moving.NewMonitor(info.Space)
	pts := benchPoints(info, 5)
	for i, p := range pts {
		if _, err := mon.Register(int32(i), p, info.DefaultR, 0); err != nil {
			b.Fatal(err)
		}
	}
	objs := benchObjects(info, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		if _, err := mon.Apply(moving.Update{ID: o.ID, Loc: o.Loc, Part: o.Part, T: float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtMultiStop measures Held-Karp route optimization (5 stops).
func BenchmarkExtMultiStop(b *testing.B) {
	info := dataset.Get("CPH")
	eng := benchSuite.Engine(info, "IDIndex")
	eng.SetObjects(nil)
	pl := route.New(eng)
	pts := benchPoints(info, 7)
	for i := 0; i < b.N; i++ {
		if _, _, err := pl.Optimized(pts[0], pts[1:6], pts[6], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompactIDIndex compares the float64 and float32 matrix
// variants on SPDQ.
func BenchmarkAblationCompactIDIndex(b *testing.B) {
	info := dataset.Get("CPH")
	pairs := benchPairs(info, info.DefaultS2T, 10)
	for _, compact := range []bool{false, true} {
		var eng query.Engine
		if compact {
			eng = idindex.NewCompact(info.Space)
		} else {
			eng = idindex.New(info.Space)
		}
		eng.SetObjects(nil)
		b.Run(fmt.Sprintf("compact=%v", compact), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if _, err := eng.SPD(pr.P, pr.Q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.SizeBytes())/1e6, "MB")
		})
	}
}
