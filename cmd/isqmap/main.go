// Command isqmap renders one floor of a dataset (or of a JSON-encoded
// space) as SVG: partitions colored by kind, doors as dots (virtual doors
// hollow, unidirectional doors as arrows). Useful for eyeballing the
// generated floorplans against the paper's Figure 6.
//
// Usage:
//
//	isqmap -dataset SYN5 -floor 0 > syn5.svg
//	isqmap -in space.json -floor 2 > floor2.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"indoorsq/internal/dataset"
	"indoorsq/internal/indoor"
)

func main() {
	var (
		ds    = flag.String("dataset", "CPH", "dataset to render")
		in    = flag.String("in", "", "JSON space file (overrides -dataset)")
		floor = flag.Int("floor", 0, "floor to render")
		scale = flag.Float64("scale", 0.5, "pixels per meter")
	)
	flag.Parse()

	var sp *indoor.Space
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sp, err = indoor.DecodeSpace(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		info, err := dataset.Build(*ds)
		if err != nil {
			log.Fatal(err)
		}
		sp = info.Space
	}
	render(os.Stdout, sp, int16(*floor), *scale)
}

func render(w *os.File, sp *indoor.Space, floor int16, scale float64) {
	ids := sp.OnFloor(floor)
	if len(ids) == 0 {
		log.Fatalf("no partitions on floor %d", floor)
	}
	mbr := sp.Partition(ids[0]).MBR
	for _, id := range ids[1:] {
		mbr = mbr.Union(sp.Partition(id).MBR)
	}
	const pad = 10.0
	width := mbr.Width()*scale + 2*pad
	height := mbr.Height()*scale + 2*pad
	// SVG y grows downward; flip so the plan reads like the paper's figures.
	tx := func(x float64) float64 { return (x-mbr.MinX)*scale + pad }
	ty := func(y float64) float64 { return height - ((y-mbr.MinY)*scale + pad) }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	fill := map[indoor.Kind]string{
		indoor.Room:      "#dce9f5",
		indoor.Hallway:   "#fdf3d8",
		indoor.Staircase: "#e7d8f5",
	}
	for _, id := range ids {
		v := sp.Partition(id)
		fmt.Fprintf(w, `<polygon points="`)
		for _, p := range v.Poly {
			fmt.Fprintf(w, "%.1f,%.1f ", tx(p.X), ty(p.Y))
		}
		fmt.Fprintf(w, `" fill="%s" stroke="#555" stroke-width="0.8"/>`+"\n", fill[v.Kind])
	}
	for i := range sp.Doors() {
		d := sp.Door(indoor.DoorID(i))
		if d.Floor != floor {
			continue
		}
		x, y := tx(d.P.X), ty(d.P.Y)
		switch {
		case d.Virtual:
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2" fill="white" stroke="#c33"/>`+"\n", x, y)
		case !d.Bidirectional():
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#d22"/>`+"\n", x, y)
		default:
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2" fill="#272"/>`+"\n", x, y)
		}
	}
	fmt.Fprintln(w, `</svg>`)
}
