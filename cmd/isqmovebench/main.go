// Command isqmovebench measures the streaming continuous-query engine of
// PR 10 (internal/moving.Stream) against the scan-all baseline
// (moving.Monitor) and writes the comparison to a JSON report
// (BENCH_PR10.json).
//
// Each config is a spacegen venue with a population of moving objects and
// a set of standing range monitors. The indexed side is the sharded Stream:
// a partition→query inverted index derived from each monitor's cached
// door-distance field routes every update to just the monitors whose
// result it could change, and batches fan out across object shards. The
// baseline Monitor re-evaluates every registered monitor on every update.
//
// Correctness comes first: before any timing, both sides consume the
// identical update sequence (interleaved with removals) and their full
// event streams — canonically ordered — plus their final result sets are
// asserted identical. Only then are throughput (sustained updates/sec) and
// p95 ApplyBatch latency measured. The baseline is time-capped: it applies
// a prefix of the workload serially and its updates/sec is extrapolated,
// which is fair because scan-all cost per update depends on the monitor
// count, not on how many updates have been applied.
//
// The full run asserts the acceptance bound: at 10^4 monitors the indexed
// stream must sustain >= 10x the scan-all updates/sec.
//
// Usage:
//
//	isqmovebench [-o BENCH_PR10.json] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"indoorsq/internal/indoor"
	"indoorsq/internal/moving"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "isqmovebench:", err)
	os.Exit(1)
}

// monitorSpec is one standing range monitor of a config.
type monitorSpec struct {
	qid int32
	p   indoor.Point
	r   float64
}

// makeMonitors draws query points from the venue's room distribution with
// a spread of radii.
func makeMonitors(sp *indoor.Space, seed int64, n int) []monitorSpec {
	gen := workload.New(sp, seed)
	out := make([]monitorSpec, n)
	for i := range out {
		p, _ := gen.PointIn()
		out[i] = monitorSpec{qid: int32(i + 1), p: p, r: 8 + float64(i%5)*2}
	}
	return out
}

func register(reg func(qid int32, p indoor.Point, r float64, t float64) ([]moving.Event, error), ms []monitorSpec) {
	for _, m := range ms {
		if _, err := reg(m.qid, m.p, m.r, 0); err != nil {
			die(fmt.Errorf("register %d: %w", m.qid, err))
		}
	}
}

func toUpdates(ms []spacegen.Motion) []moving.Update {
	us := make([]moving.Update, len(ms))
	for i, m := range ms {
		us[i] = moving.Update{ID: m.ID, Loc: m.Loc, Part: m.Part, T: m.T}
	}
	return us
}

// canon orders an event stream canonically: by timestamp, then query, then
// object — the total order ApplyBatch already emits, applied to the
// baseline's per-update slices too so the streams compare elementwise.
func canon(evs []moving.Event) []moving.Event {
	out := append([]moving.Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return a.Object < b.Object
	})
	return out
}

// assertEqualStreams is the generative gate: the indexed stream and the
// scan-all baseline consume the identical sequence (updates in batches on
// one side, serially on the other, plus interleaved removals) and must
// produce the identical event stream and identical final memberships.
func assertEqualStreams(sp *indoor.Space, monitors []monitorSpec, updates []moving.Update, batch int) {
	st := moving.NewStream(sp, moving.StreamOptions{Shards: 8, Workers: 4})
	mon := moving.NewMonitor(sp)
	register(st.Register, monitors)
	register(mon.Register, monitors)

	var evStream, evBase []moving.Event
	for off := 0; off < len(updates); off += batch {
		end := off + batch
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[off:end]
		evs, err := st.ApplyBatch(chunk)
		if err != nil {
			die(fmt.Errorf("gate: stream batch: %w", err))
		}
		evStream = append(evStream, evs...)
		for _, u := range chunk {
			evs, err := mon.Apply(u)
			if err != nil {
				die(fmt.Errorf("gate: baseline apply: %w", err))
			}
			evBase = append(evBase, evs...)
		}
		// Every few batches, remove the chunk's first object from both.
		if (off/batch)%3 == 2 {
			id, t := chunk[0].ID, chunk[len(chunk)-1].T+0.5
			evStream = append(evStream, st.Remove(id, t)...)
			evBase = append(evBase, mon.Remove(id, t)...)
		}
	}
	cs, cb := canon(evStream), canon(evBase)
	if len(cs) != len(cb) {
		die(fmt.Errorf("gate: %d stream events vs %d baseline events", len(cs), len(cb)))
	}
	for i := range cs {
		if cs[i] != cb[i] {
			die(fmt.Errorf("gate: event %d diverges: stream %+v, baseline %+v", i, cs[i], cb[i]))
		}
	}
	for _, m := range monitors {
		a, b := st.Result(m.qid), mon.Result(m.qid)
		if len(a) != len(b) {
			die(fmt.Errorf("gate: query %d membership %d vs %d", m.qid, len(a), len(b)))
		}
		for i := range a {
			if a[i] != b[i] {
				die(fmt.Errorf("gate: query %d membership diverges at %d: %d vs %d", m.qid, i, a[i], b[i]))
			}
		}
	}
	st.Close()
}

type result struct {
	Objects          int     `json:"objects"`
	Monitors         int     `json:"monitors"`
	Partitions       int     `json:"partitions"`
	Doors            int     `json:"doors"`
	TimedUpdates     int     `json:"timed_updates_indexed"`
	BaselineUpdates  int     `json:"timed_updates_scan_all"`
	BatchSize        int     `json:"batch_size"`
	IndexedUPS       float64 `json:"indexed_updates_per_sec"`
	ScanAllUPS       float64 `json:"scan_all_updates_per_sec"`
	Speedup          float64 `json:"speedup"`
	P95BatchMs       float64 `json:"indexed_p95_batch_ms"`
	P95UpdateUs      float64 `json:"indexed_p95_per_update_us"`
	MeanTouched      float64 `json:"mean_monitors_touched_per_update"`
	EventsEmitted    int64   `json:"events_emitted_indexed"`
	RegisterMs       float64 `json:"indexed_register_ms"`
	SeedMs           float64 `json:"indexed_seed_ms"`
	GateUpdates      int     `json:"gate_updates"`
	GateEventsEqual  bool    `json:"gate_events_equal"`
	GateResultsEqual bool    `json:"gate_results_equal"`
}

// runConfig measures one (objects, monitors) point.
func runConfig(sp *indoor.Space, seed int64, nObjects, nMonitors, timedSteps, baseCap, batch, gateUpdates int) result {
	monitors := makeMonitors(sp, seed*7, nMonitors)

	// Seed positions are the motion stream's own initial object placement
	// (same seed), so the walk continues from exactly where the seed left
	// the population.
	seedObjs := spacegen.Objects(sp, seed, nObjects)
	seedUpd := make([]moving.Update, len(seedObjs))
	for i, o := range seedObjs {
		seedUpd[i] = moving.Update{ID: o.ID, Loc: o.Loc, Part: o.Part, T: float64(i+1) * 1e-6}
	}
	motions := toUpdates(spacegen.MotionStream(sp, seed, nObjects, timedSteps, 1, 1e-6, 0.3))

	// Correctness gate on a prefix of the workload with the full monitor
	// set: the events and memberships must be identical before any number
	// below means anything.
	gate := motions[:gateUpdates]
	assertEqualStreams(sp, monitors, gate, batch)

	// Indexed side: register, seed the whole population, then the timed run.
	st := moving.NewStream(sp, moving.StreamOptions{})
	t0 := time.Now()
	register(st.Register, monitors)
	registerMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	t0 = time.Now()
	for off := 0; off < len(seedUpd); off += 4096 {
		end := off + 4096
		if end > len(seedUpd) {
			end = len(seedUpd)
		}
		if _, err := st.ApplyBatch(seedUpd[off:end]); err != nil {
			die(fmt.Errorf("seed: %w", err))
		}
	}
	seedMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	touchSum0, touchN0 := moving.Metrics.Touched.Sum(), moving.Metrics.Touched.Count()
	var events int64
	lat := make([]float64, 0, len(motions)/batch+1)
	t0 = time.Now()
	for off := 0; off < len(motions); off += batch {
		end := off + batch
		if end > len(motions) {
			end = len(motions)
		}
		b0 := time.Now()
		evs, err := st.ApplyBatch(motions[off:end])
		if err != nil {
			die(fmt.Errorf("timed batch: %w", err))
		}
		lat = append(lat, float64(time.Since(b0).Nanoseconds())/1e6)
		events += int64(len(evs))
	}
	elapsed := time.Since(t0).Seconds()
	indexedUPS := float64(len(motions)) / elapsed
	sort.Float64s(lat)
	p95 := lat[(len(lat)*95)/100]
	meanTouched := 0.0
	if dn := moving.Metrics.Touched.Count() - touchN0; dn > 0 {
		meanTouched = float64(moving.Metrics.Touched.Sum()-touchSum0) / float64(dn)
	}
	st.Close()

	// Scan-all baseline: same monitors, but seeded only with the objects
	// its capped update prefix touches — per-update cost scans the monitor
	// list either way, so the extrapolated updates/sec is representative.
	mon := moving.NewMonitor(sp)
	register(mon.Register, monitors)
	basePrefix := motions
	if len(basePrefix) > baseCap {
		basePrefix = basePrefix[:baseCap]
	}
	seen := map[int32]bool{}
	for _, u := range basePrefix {
		if !seen[u.ID] {
			seen[u.ID] = true
			if _, err := mon.Apply(moving.Update{ID: u.ID, Loc: u.Loc, Part: u.Part, T: u.T - 0.5}); err != nil {
				die(fmt.Errorf("baseline seed: %w", err))
			}
		}
	}
	t0 = time.Now()
	for _, u := range basePrefix {
		if _, err := mon.Apply(u); err != nil {
			die(fmt.Errorf("baseline apply: %w", err))
		}
	}
	scanUPS := float64(len(basePrefix)) / time.Since(t0).Seconds()

	res := result{
		Objects:          nObjects,
		Monitors:         nMonitors,
		Partitions:       sp.NumPartitions(),
		Doors:            sp.NumDoors(),
		TimedUpdates:     len(motions),
		BaselineUpdates:  len(basePrefix),
		BatchSize:        batch,
		IndexedUPS:       indexedUPS,
		ScanAllUPS:       scanUPS,
		Speedup:          indexedUPS / scanUPS,
		P95BatchMs:       p95,
		P95UpdateUs:      p95 * 1e3 / float64(batch),
		MeanTouched:      meanTouched,
		EventsEmitted:    events,
		RegisterMs:       registerMs,
		SeedMs:           seedMs,
		GateUpdates:      gateUpdates,
		GateEventsEqual:  true, // assertEqualStreams dies otherwise
		GateResultsEqual: true,
	}
	fmt.Printf("  %7d objs x %5d monitors: indexed %9.0f ups (p95 batch %6.2f ms, touched %5.1f/update) | scan-all %9.0f ups | %6.1fx\n",
		nObjects, nMonitors, indexedUPS, p95, meanTouched, scanUPS, res.Speedup)
	return res
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

func main() {
	var (
		out   = flag.String("o", "", "output JSON path (empty: no file)")
		smoke = flag.Bool("smoke", false, "tiny venue, equality gate + short timing, no report")
	)
	flag.Parse()

	if *smoke {
		sp, err := spacegen.Generate(91, spacegen.Params{Floors: 1, Rows: 3, Cols: 4, ExtraDoors: 2}.Normalize())
		if err != nil {
			die(err)
		}
		runConfig(sp, 92, 200, 40, 4000, 2000, 256, 1500)
		fmt.Println("smoke ok: indexed and scan-all event streams identical")
		return
	}

	params := spacegen.Params{
		Floors: 3, Rows: 20, Cols: 25, Hall: spacegen.HallStraight,
		ExtraDoors: 40, Imbalance: 0.2,
	}.Normalize()
	sp, err := spacegen.Generate(90, params)
	if err != nil {
		die(err)
	}
	fmt.Printf("venue: %d partitions, %d doors, %d floors\n", sp.NumPartitions(), sp.NumDoors(), 3)

	var rows []result
	rows = append(rows, runConfig(sp, 92, 100_000, 1_000, 200_000, 4000, 1024, 500))
	at10k := runConfig(sp, 93, 100_000, 10_000, 200_000, 2000, 1024, 300)
	rows = append(rows, at10k)
	rows = append(rows, runConfig(sp, 94, 1_000_000, 10_000, 200_000, 2000, 1024, 300))

	// The acceptance bound of PR 10: at 10^4 standing monitors the indexed
	// stream must sustain at least 10x the scan-all updates/sec.
	for _, r := range rows {
		if r.Monitors >= 10_000 && r.Speedup < 10 {
			die(fmt.Errorf("speedup %.1fx at %d monitors, need >= 10x", r.Speedup, r.Monitors))
		}
	}

	full := map[string]any{
		"pr":    10,
		"title": "Streaming continuous queries: sharded inverted-index stream vs scan-all",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note": "indexed = moving.Stream (partition->query inverted index over cached " +
				"door-distance fields, object-sharded state, batched ingestion through exec.Pool); " +
				"scan-all = moving.Monitor re-evaluating every monitor per update. Before timing, " +
				"both sides consume an identical update+removal prefix with the full monitor set " +
				"and their canonical event streams and final memberships are asserted identical. " +
				"The baseline is time-capped and extrapolated (per-update cost is monitor-bound, " +
				"not history-bound). p95 batch latency is wall time per ApplyBatch call.",
		},
		"configs": rows,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	path := *out
	if path == "" {
		path = "BENCH_PR10.json"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote", path)
}
