// Command isqserve runs the indoor LBS HTTP backend over one benchmark
// dataset, with any subset of the five engines loaded side by side.
//
// Usage:
//
//	isqserve [-addr :8080] [-dataset CPH] [-engines IDModel,VIPTree]
//	         [-default VIPTree] [-objects 1000] [-seed 1]
//
// Endpoints (all GET, JSON):
//
//	/v1/info
//	/v1/range?x=&y=&floor=&r=[&engine=]
//	/v1/knn?x=&y=&floor=&k=[&engine=]
//	/v1/route?x=&y=&floor=&x2=&y2=&floor2=[&engine=]
//	/v1/partitions?floor=
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"indoorsq/internal/bench"
	"indoorsq/internal/dataset"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		ds      = flag.String("dataset", "CPH", "benchmark dataset")
		names   = flag.String("engines", "IDModel,VIPTree", "engines to load")
		def     = flag.String("default", "VIPTree", "default engine")
		objects = flag.Int("objects", 1000, "number of random POIs")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	objs := workload.New(info.Space, *seed).Objects(*objects)
	engines := make(map[string]query.Engine)
	for _, name := range strings.Split(*names, ",") {
		start := time.Now()
		eng, err := bench.NewEngine(name, info)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetObjects(objs)
		engines[name] = eng
		log.Printf("built %s in %v (%.1f MB)", name,
			time.Since(start).Round(time.Millisecond), float64(eng.SizeBytes())/1e6)
	}

	srv, err := server.New(info.Name, info.Space, engines, *def, info.Gamma)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %s with %d POIs on %s", info.Name, len(objs), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
