// Command isqserve runs the indoor LBS HTTP backend over one benchmark
// dataset, with any subset of the five engines loaded side by side.
//
// Usage:
//
//	isqserve [-addr :8080] [-dataset CPH] [-engines IDModel,VIPTree]
//	         [-default VIPTree] [-objects 1000] [-seed 1]
//	         [-query-timeout 0] [-max-visited-doors 0] [-max-work-mb 0]
//	         [-read-timeout 30s] [-read-header-timeout 5s] [-idle-timeout 2m]
//	         [-debug-addr ""]
//
// Endpoints (all GET, JSON unless noted):
//
//	/v1/info
//	/v1/range?x=&y=&floor=&r=[&engine=]
//	/v1/knn?x=&y=&floor=&k=[&engine=]
//	/v1/route?x=&y=&floor=&x2=&y2=&floor2=[&engine=]
//	/v1/partitions?floor=
//	/v1/trace?op=range|knn|route&...   per-stage span breakdown of one query
//	/metrics                           plain-text counters and latency quantiles
//
// -query-timeout bounds every query endpoint (an expired query answers
// 504); -max-visited-doors / -max-work-mb set the admission budget (an
// exhausted query answers 422 with its partial progress). The read/idle
// timeouts harden the listener itself against slow or stuck clients.
//
// -debug-addr, when non-empty, starts a second listener (keep it private —
// bind to localhost) serving net/http/pprof under /debug/pprof/ and expvar
// under /debug/vars, with the query-metrics registry published as the
// "isq" expvar.
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"indoorsq/internal/bench"
	"indoorsq/internal/dataset"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		ds      = flag.String("dataset", "CPH", "benchmark dataset")
		names   = flag.String("engines", "IDModel,VIPTree", "engines to load")
		def     = flag.String("default", "VIPTree", "default engine")
		objects = flag.Int("objects", 1000, "number of random POIs")
		seed    = flag.Int64("seed", 1, "workload seed")

		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline on range/knn/route (0 = unbounded)")
		maxDoors     = flag.Int("max-visited-doors", 0, "per-query door-expansion budget (0 = unbounded)")
		maxWorkMB    = flag.Float64("max-work-mb", 0, "per-query transient working-set budget in MB (0 = unbounded)")

		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")

		debugAddr = flag.String("debug-addr", "", "private listener for pprof + expvar (empty = disabled)")
	)
	flag.Parse()

	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	objs := workload.New(info.Space, *seed).Objects(*objects)
	engines := make(map[string]query.Engine)
	for _, name := range strings.Split(*names, ",") {
		start := time.Now()
		eng, err := bench.NewEngine(name, info)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetObjects(objs)
		engines[name] = eng
		log.Printf("built %s in %v (%.1f MB)", name,
			time.Since(start).Round(time.Millisecond), float64(eng.SizeBytes())/1e6)
	}

	srv, err := server.New(info.Name, info.Space, engines, *def, info.Gamma)
	if err != nil {
		log.Fatal(err)
	}
	if *queryTimeout > 0 {
		for _, ep := range []string{"range", "knn", "route"} {
			srv.SetTimeout(ep, *queryTimeout)
		}
		log.Printf("query timeout: %v", *queryTimeout)
	}
	if *maxDoors > 0 || *maxWorkMB > 0 {
		b := query.Budget{MaxVisitedDoors: *maxDoors, MaxWorkBytes: int64(*maxWorkMB * 1e6)}
		srv.SetBudget(b)
		log.Printf("admission budget: maxVisitedDoors=%d maxWorkBytes=%d", b.MaxVisitedDoors, b.MaxWorkBytes)
	}

	if *debugAddr != "" {
		// The debug listener is opt-in and meant to stay private: pprof
		// exposes heap contents and expvar exposes command lines. It gets
		// its own mux so none of this leaks onto the public handler.
		expvar.Publish("isq", expvar.Func(func() any { return srv.Registry().Snapshot() }))
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("debug listener (pprof, expvar) on %s", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, dmux))
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("serving %s with %d POIs on %s", info.Name, len(objs), *addr)
	log.Fatal(hs.ListenAndServe())
}
