// Command isqserve runs the indoor LBS HTTP backend over one benchmark
// dataset, with any subset of the five engines loaded side by side.
//
// Usage:
//
//	isqserve [-addr :8080] [-dataset CPH] [-engines IDModel,VIPTree]
//	         [-default VIPTree] [-objects 1000] [-seed 1]
//	         [-snapshot file.isq] [-save-snapshot file.isq]
//	         [-query-timeout 0] [-max-visited-doors 0] [-max-work-mb 0]
//	         [-read-timeout 30s] [-read-header-timeout 5s] [-idle-timeout 2m]
//	         [-debug-addr ""]
//
// Endpoints (GET unless noted, JSON unless noted):
//
//	/v1/info
//	/v1/range?x=&y=&floor=&r=[&engine=]
//	/v1/knn?x=&y=&floor=&k=[&engine=]
//	/v1/route?x=&y=&floor=&x2=&y2=&floor2=[&engine=]
//	/v1/partitions?floor=
//	/v1/trace?op=range|knn|route&...   per-stage span breakdown of one query
//	POST /v1/swap                      load a snapshot and publish it atomically
//	/metrics                           plain-text counters and latency quantiles
//
// -snapshot boots from a snapshot artifact (built offline with isqsnap)
// instead of running the expensive in-process construction; the same path
// is then the default for POST /v1/swap and for SIGHUP, which re-loads the
// artifact and publishes it without dropping a request — the fleet-rollout
// primitive: rebuild once offline, SIGHUP every replica. -save-snapshot
// writes the artifact after a cold build (so the next boot can skip it).
//
// -query-timeout bounds every query endpoint (an expired query answers
// 504); -max-visited-doors / -max-work-mb set the admission budget (an
// exhausted query answers 422 with its partial progress). The read/idle
// timeouts harden the listener itself against slow or stuck clients.
//
// -debug-addr, when non-empty, starts a second listener (keep it private —
// bind to localhost) serving net/http/pprof under /debug/pprof/ and expvar
// under /debug/vars, with the query-metrics registry published as the
// "isq" expvar.
//
// -venues switches to the multi-venue serving tier: a comma-separated list
// of id=source entries, where source is a dataset name (CPH), gen:<seed>
// (a generated venue), or snap:<path> (a snapshot artifact). Venues hash
// across -shards shards, and every venue routes each query class through
// its cost-based router (-route-pin ENGINE pins all of them — the
// deterministic override). The tier serves:
//
//	/v1/venues
//	/v1/venues/{id}/info|range|knn|spd|metrics
//	/v1/venues/{id}/route            decision table + evidence (POST pins)
//	POST /v1/venues/{id}/swap        per-venue snapshot swap
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"indoorsq/internal/dataset"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/tenant"
	"indoorsq/internal/workload"
)

// parseVenueSpecs parses the -venues flag: "id=CPH,id2=gen:7,id3=snap:x.isq".
func parseVenueSpecs(raw string, engines []string, objects int) ([]tenant.VenueSpec, error) {
	var specs []tenant.VenueSpec
	for _, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, src, ok := strings.Cut(entry, "=")
		if !ok || id == "" || src == "" {
			return nil, fmt.Errorf("bad venue entry %q (want id=dataset, id=gen:<seed>, or id=snap:<path>)", entry)
		}
		spec := tenant.VenueSpec{ID: id, Engines: engines, Objects: objects}
		switch {
		case strings.HasPrefix(src, "snap:"):
			spec.Snapshot = strings.TrimPrefix(src, "snap:")
		case strings.HasPrefix(src, "gen:"):
			seed, err := strconv.ParseInt(strings.TrimPrefix(src, "gen:"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad venue entry %q: %v", entry, err)
			}
			spec.GenSeed = seed
			spec.GenParams = spacegen.Params{Floors: 2, Rows: 3, Cols: 4, ExtraDoors: 3}
		default:
			spec.Dataset = src
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-venues given but no venue entries parsed")
	}
	return specs, nil
}

// serveTenant boots and serves the multi-venue tier.
func serveTenant(venues string, shards int, routePin string, engines []string,
	objects int, seed int64, queryTimeout time.Duration, budget query.Budget,
	hs *http.Server) {
	specs, err := parseVenueSpecs(venues, engines, objects)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	tier, err := tenant.New(specs, tenant.Options{Shards: shards, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("booted %d venues across %d shards in %v",
		len(tier.VenueIDs()), tier.NumShards(), time.Since(start).Round(time.Millisecond))
	if routePin != "" {
		for _, id := range tier.VenueIDs() {
			v, _ := tier.Venue(id)
			if err := v.Router().Pin("", routePin); err != nil {
				log.Fatalf("venue %s: %v", id, err)
			}
		}
		log.Printf("routing pinned to %s for every venue and query class", routePin)
	}
	srv := server.NewTenantServer(tier)
	if queryTimeout > 0 {
		for _, ep := range []string{"range", "knn", "spd"} {
			srv.SetTimeout(ep, queryTimeout)
		}
	}
	if budget != (query.Budget{}) {
		srv.SetBudget(budget)
	}
	for _, id := range tier.VenueIDs() {
		log.Printf("venue %s on shard %d", id, tier.ShardOf(id))
	}
	hs.Handler = srv.Handler()
	log.Printf("serving %d venues on %s", len(tier.VenueIDs()), hs.Addr)
	log.Fatal(hs.ListenAndServe())
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		ds      = flag.String("dataset", "CPH", "benchmark dataset (cold-build path)")
		names   = flag.String("engines", "IDModel,VIPTree", "engines to load (cold-build path)")
		def     = flag.String("default", "VIPTree", "default engine")
		objects = flag.Int("objects", 1000, "number of random POIs")
		seed    = flag.Int64("seed", 1, "workload seed")

		snap     = flag.String("snapshot", "", "boot from this snapshot artifact; also the SIGHUP / POST /v1/swap reload default")
		saveSnap = flag.String("save-snapshot", "", "after a cold build, write the serving state to this artifact")

		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline on range/knn/route (0 = unbounded)")
		maxDoors     = flag.Int("max-visited-doors", 0, "per-query door-expansion budget (0 = unbounded)")
		maxWorkMB    = flag.Float64("max-work-mb", 0, "per-query transient working-set budget in MB (0 = unbounded)")

		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")

		debugAddr = flag.String("debug-addr", "", "private listener for pprof + expvar (empty = disabled)")

		venues   = flag.String("venues", "", "multi-venue tier: comma-separated id=dataset|id=gen:<seed>|id=snap:<path> entries")
		shards   = flag.Int("shards", 0, "shard count for -venues (0 = min(4, venues))")
		routePin = flag.String("route-pin", "", "pin every venue's router to this engine (deterministic override)")
	)
	flag.Parse()

	if *venues != "" {
		hs := &http.Server{
			Addr:              *addr,
			ReadTimeout:       *readTimeout,
			ReadHeaderTimeout: *readHeaderTimeout,
			IdleTimeout:       *idleTimeout,
		}
		budget := query.Budget{MaxVisitedDoors: *maxDoors, MaxWorkBytes: int64(*maxWorkMB * 1e6)}
		if *maxDoors == 0 && *maxWorkMB == 0 {
			budget = query.Budget{}
		}
		serveTenant(*venues, *shards, *routePin, strings.Split(*names, ","),
			*objects, *seed, *queryTimeout, budget, hs)
		return
	}

	var b *bundle.Bundle
	if *snap != "" {
		start := time.Now()
		var err error
		b, err = bundle.LoadFile(*snap)
		if err != nil {
			log.Fatalf("load snapshot %s: %v", *snap, err)
		}
		log.Printf("loaded snapshot %s in %v (format v%d, fingerprint %016x, engines %v)",
			*snap, time.Since(start).Round(time.Millisecond), b.FormatVersion, b.Fingerprint, b.EngineList())
	} else {
		info, err := dataset.Build(*ds)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		b, err = bundle.Build(info.Name, info.Space, bundle.Options{
			Engines: strings.Split(*names, ","),
			Gamma:   info.Gamma,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range b.EngineList() {
			log.Printf("built %s (%.1f MB)", name, float64(b.Engines[name].SizeBytes())/1e6)
		}
		log.Printf("cold build of %s took %v", info.Name, time.Since(start).Round(time.Millisecond))
		if *saveSnap != "" {
			start = time.Now()
			if err := b.WriteFile(*saveSnap, true); err != nil {
				log.Fatalf("save snapshot: %v", err)
			}
			log.Printf("saved snapshot %s in %v", *saveSnap, time.Since(start).Round(time.Millisecond))
		}
	}

	st, err := server.StateFromBundle(b, *def)
	if err != nil {
		log.Fatal(err)
	}
	objs := workload.New(b.Space, *seed).Objects(*objects)
	st.SetObjects(objs)
	srv, err := server.NewFromState(st)
	if err != nil {
		log.Fatal(err)
	}
	if *snap != "" {
		srv.SetSnapshotPath(*snap)
		// SIGHUP = reload the artifact and publish it atomically; queries in
		// flight finish on the state they started with.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				start := time.Now()
				if _, err := srv.Reload(); err != nil {
					log.Printf("SIGHUP reload failed (still serving epoch %d): %v", srv.Epoch(), err)
					continue
				}
				log.Printf("SIGHUP reload: serving epoch %d after %v", srv.Epoch(), time.Since(start).Round(time.Millisecond))
			}
		}()
	}
	if *queryTimeout > 0 {
		for _, ep := range []string{"range", "knn", "route"} {
			srv.SetTimeout(ep, *queryTimeout)
		}
		log.Printf("query timeout: %v", *queryTimeout)
	}
	if *maxDoors > 0 || *maxWorkMB > 0 {
		bud := query.Budget{MaxVisitedDoors: *maxDoors, MaxWorkBytes: int64(*maxWorkMB * 1e6)}
		srv.SetBudget(bud)
		log.Printf("admission budget: maxVisitedDoors=%d maxWorkBytes=%d", bud.MaxVisitedDoors, bud.MaxWorkBytes)
	}

	if *debugAddr != "" {
		// The debug listener is opt-in and meant to stay private: pprof
		// exposes heap contents and expvar exposes command lines. It gets
		// its own mux so none of this leaks onto the public handler.
		expvar.Publish("isq", expvar.Func(func() any { return srv.Registry().Snapshot() }))
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("debug listener (pprof, expvar) on %s", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, dmux))
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("serving %s (origin %s) with %d POIs on %s", b.Name, b.Origin, len(objs), *addr)
	log.Fatal(hs.ListenAndServe())
}
