// Command isqserve runs the indoor LBS HTTP backend over one benchmark
// dataset, with any subset of the five engines loaded side by side.
//
// Usage:
//
//	isqserve [-addr :8080] [-dataset CPH] [-engines IDModel,VIPTree]
//	         [-default VIPTree] [-objects 1000] [-seed 1]
//	         [-query-timeout 0] [-max-visited-doors 0] [-max-work-mb 0]
//	         [-read-timeout 30s] [-read-header-timeout 5s] [-idle-timeout 2m]
//
// Endpoints (all GET, JSON):
//
//	/v1/info
//	/v1/range?x=&y=&floor=&r=[&engine=]
//	/v1/knn?x=&y=&floor=&k=[&engine=]
//	/v1/route?x=&y=&floor=&x2=&y2=&floor2=[&engine=]
//	/v1/partitions?floor=
//
// -query-timeout bounds every query endpoint (an expired query answers
// 504); -max-visited-doors / -max-work-mb set the admission budget (an
// exhausted query answers 422 with its partial progress). The read/idle
// timeouts harden the listener itself against slow or stuck clients.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"indoorsq/internal/bench"
	"indoorsq/internal/dataset"
	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		ds      = flag.String("dataset", "CPH", "benchmark dataset")
		names   = flag.String("engines", "IDModel,VIPTree", "engines to load")
		def     = flag.String("default", "VIPTree", "default engine")
		objects = flag.Int("objects", 1000, "number of random POIs")
		seed    = flag.Int64("seed", 1, "workload seed")

		queryTimeout = flag.Duration("query-timeout", 0, "per-query deadline on range/knn/route (0 = unbounded)")
		maxDoors     = flag.Int("max-visited-doors", 0, "per-query door-expansion budget (0 = unbounded)")
		maxWorkMB    = flag.Float64("max-work-mb", 0, "per-query transient working-set budget in MB (0 = unbounded)")

		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	)
	flag.Parse()

	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	objs := workload.New(info.Space, *seed).Objects(*objects)
	engines := make(map[string]query.Engine)
	for _, name := range strings.Split(*names, ",") {
		start := time.Now()
		eng, err := bench.NewEngine(name, info)
		if err != nil {
			log.Fatal(err)
		}
		eng.SetObjects(objs)
		engines[name] = eng
		log.Printf("built %s in %v (%.1f MB)", name,
			time.Since(start).Round(time.Millisecond), float64(eng.SizeBytes())/1e6)
	}

	srv, err := server.New(info.Name, info.Space, engines, *def, info.Gamma)
	if err != nil {
		log.Fatal(err)
	}
	if *queryTimeout > 0 {
		for _, ep := range []string{"range", "knn", "route"} {
			srv.SetTimeout(ep, *queryTimeout)
		}
		log.Printf("query timeout: %v", *queryTimeout)
	}
	if *maxDoors > 0 || *maxWorkMB > 0 {
		b := query.Budget{MaxVisitedDoors: *maxDoors, MaxWorkBytes: int64(*maxWorkMB * 1e6)}
		srv.SetBudget(b)
		log.Printf("admission budget: maxVisitedDoors=%d maxWorkBytes=%d", b.MaxVisitedDoors, b.MaxWorkBytes)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("serving %s with %d POIs on %s", info.Name, len(objs), *addr)
	log.Fatal(hs.ListenAndServe())
}
