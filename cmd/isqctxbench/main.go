// Command isqctxbench measures the steady-state cost of context tracking on
// the hot query paths and writes the comparison to a JSON report
// (BENCH_PR3.json).
//
// "Untracked" runs the plain query entry points (SPD/Range/KNN), where
// query.Track is a no-op and the amortized probe in Stats.Door is a single
// nil check. "Tracked" runs the same queries through SPDCtx/RangeCtx/KNNCtx
// under a live cancellable context (never cancelled), so every
// query.CheckInterval door expansions pay a ctx.Err poll. A third SPD
// variant additionally arms a generous work budget. The acceptance
// criterion is that tracking costs within noise of the untracked path —
// the uncancelled SPDQ ns/op must not regress by more than ~2%.
//
// Usage:
//
//	isqctxbench [-o BENCH_PR3.json] [-pr2 BENCH_PR2.json] [-rows 6] [-cols 6] [-floors 2]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// mb is one benchmark observation.
type mb struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// run executes one benchmark function under the testing harness.
func run(f func(b *testing.B)) mb {
	r := testing.Benchmark(f)
	return mb{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// overheadPct returns how much slower tracked is than untracked, in percent
// (negative means tracked measured faster, i.e. pure noise).
func overheadPct(untracked, tracked mb) float64 {
	if untracked.NsOp == 0 {
		return 0
	}
	return 100 * (tracked.NsOp - untracked.NsOp) / untracked.NsOp
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

// pr2SPDNsOp digs the cached CINDEX SPD ns/op out of a BENCH_PR2.json
// report, if present, so the PR3 report can carry the cross-PR reference.
func pr2SPDNsOp(path string) (float64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, false
	}
	cur := doc
	for _, k := range []string{"benchmarks", "cindex_query_sweep", "spd", "after"} {
		next, ok := cur[k].(map[string]any)
		if !ok {
			return 0, false
		}
		cur = next
	}
	ns, ok := cur["ns_op"].(float64)
	return ns, ok
}

func main() {
	var (
		out    = flag.String("o", "BENCH_PR3.json", "output JSON path")
		pr2    = flag.String("pr2", "BENCH_PR2.json", "PR2 report to cite for the cross-PR SPD reference")
		rows   = flag.Int("rows", 6, "grid rows per floor")
		cols   = flag.Int("cols", 6, "grid cols per floor")
		floors = flag.Int("floors", 2, "floors")
	)
	flag.Parse()

	sp := testspaces.RandomGridConcave(5, *rows, *cols, *floors, 6)
	gen := workload.New(sp, 1)
	objs := gen.Objects(500)
	pts := gen.Points(64)

	eng := cindex.New(sp)
	eng.SetObjects(objs)
	ec := query.AsCtx(eng)

	// A live, never-cancelled context with a cancellable Done channel: the
	// tracked side arms and pays the amortized ctx.Err probes.
	liveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	budgetCtx := query.WithBudget(liveCtx, query.Budget{MaxVisitedDoors: 1 << 30, MaxWorkBytes: 1 << 40})

	// Warm the lazy door-pair distance cache once over the full point sweep
	// so neither side pays first-touch fills during measurement.
	var warm query.Stats
	for i := range pts {
		if _, err := eng.SPD(pts[i], pts[(i+1)%len(pts)], &warm); err != nil && err != query.ErrUnreachable {
			fmt.Fprintln(os.Stderr, "isqctxbench: warmup:", err)
			os.Exit(1)
		}
	}

	spdPlain := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SPD(pts[i%len(pts)], pts[(i+1)%len(pts)], &st); err != nil && err != query.ErrUnreachable {
				b.Fatal(err)
			}
		}
	}
	spdCtx := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ec.SPDCtx(ctx, pts[i%len(pts)], pts[(i+1)%len(pts)], &st); err != nil && err != query.ErrUnreachable {
					b.Fatal(err)
				}
			}
		}
	}
	rangePlain := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Range(pts[i%len(pts)], 40, &st); err != nil {
				b.Fatal(err)
			}
		}
	}
	rangeCtx := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ec.RangeCtx(liveCtx, pts[i%len(pts)], 40, &st); err != nil {
				b.Fatal(err)
			}
		}
	}
	knnPlain := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.KNN(pts[i%len(pts)], 10, &st); err != nil {
				b.Fatal(err)
			}
		}
	}
	knnCtx := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ec.KNNCtx(liveCtx, pts[i%len(pts)], 10, &st); err != nil {
				b.Fatal(err)
			}
		}
	}

	type row struct {
		Untracked   mb      `json:"untracked"`
		Tracked     mb      `json:"tracked"`
		OverheadPct float64 `json:"ns_op_overhead_pct"`
	}
	report := map[string]any{}
	sweep := map[string]any{}
	var spdUntracked mb
	for _, bm := range []struct {
		name      string
		untracked func(b *testing.B)
		tracked   func(b *testing.B)
	}{
		{"spd", spdPlain, spdCtx(liveCtx)},
		{"spd_budget", spdPlain, spdCtx(budgetCtx)},
		{"range_r40", rangePlain, rangeCtx},
		{"knn_k10", knnPlain, knnCtx},
	} {
		before := run(bm.untracked)
		after := run(bm.tracked)
		if bm.name == "spd" {
			spdUntracked = before
		}
		sweep[bm.name] = row{Untracked: before, Tracked: after, OverheadPct: overheadPct(before, after)}
		fmt.Printf("CIndex %-10s untracked %10.0f ns/op %6d allocs/op | tracked %10.0f ns/op %6d allocs/op | %+.2f%% ns/op\n",
			bm.name, before.NsOp, before.AllocsOp, after.NsOp, after.AllocsOp, overheadPct(before, after))
	}
	report["cindex_ctx_overhead"] = sweep

	// Cross-PR reference: the uncancelled SPD path must not have regressed
	// against the PR2 cached sweep. The in-run untracked-vs-tracked pair is
	// the primary (same-machine, same-run) criterion; the PR2 number is
	// recorded for continuity but crosses runs, so it carries machine noise.
	if ns, ok := pr2SPDNsOp(*pr2); ok {
		report["spd_vs_pr2"] = map[string]any{
			"pr2_cached_ns_op":     ns,
			"pr3_untracked_ns_op":  spdUntracked.NsOp,
			"change_pct":           100 * (spdUntracked.NsOp - ns) / ns,
			"note":                 "cross-run comparison against " + *pr2 + "; same space parameters, different process",
			"acceptance_criterion": "cindex_ctx_overhead.spd.ns_op_overhead_pct <= 2",
		}
		fmt.Printf("SPD vs PR2: %.0f ns/op (PR2 cached) -> %.0f ns/op (PR3 untracked), %+.2f%%\n",
			ns, spdUntracked.NsOp, 100*(spdUntracked.NsOp-ns)/ns)
	}

	full := map[string]any{
		"pr":    3,
		"title": "Context tracking overhead on hot query paths (cancellation, deadlines, work budgets)",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note":  "untracked = plain SPD/Range/KNN entry points (Track no-op); tracked = SPDCtx/RangeCtx/KNNCtx under a live cancellable context, paying one ctx.Err poll per query.CheckInterval door expansions. spd_budget additionally arms generous MaxVisitedDoors/MaxWorkBytes limits. Space: RandomGridConcave grid, lazy distance cache pre-warmed on both sides.",
		},
		"space": map[string]any{
			"rows": *rows, "cols": *cols, "floors": *floors,
			"partitions": sp.NumPartitions(), "doors": sp.NumDoors(),
		},
		"check_interval": query.CheckInterval,
		"benchmarks":     report,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "isqctxbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "isqctxbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
