// Command isqgraphbench measures the CSR door-graph flattening and the
// Dijkstra hot-path overhaul of PR 6 and writes the before/after comparison
// to a JSON report (BENCH_PR6.json).
//
// "Before" is the pre-PR-6 implementation kept verbatim in this tool: a
// [][]Edge slice-of-slices adjacency built by appending rows fed one door at
// a time over a channel, swept by an epoch-stamped scratch with a binary
// heap and touch-then-relax inner loop. "After" is the live package: CSR
// struct-of-arrays built by a counting pass, swept with the 4-ary heap and
// the stamp-on-improvement relaxation. Both sides are answer-identical
// (asserted here per venue and pinned by internal/doorgraph's legacy
// equivalence suite); only cost differs.
//
// Venues are spacegen buildings at roughly 10^3, 10^4 and 10^5 doors. At
// each scale the report covers graph construction, full single-source
// sweeps, goal-directed (SPDQ-style) single-target sweeps, and the absolute
// cost of CINDEX SPDQ. The full IDINDEX build is compared at the 10^3 scale
// only — its O(n^2) matrices need ~160 GB at 10^5 doors in any
// implementation, so the 10^5 "index build" row is the door graph itself,
// the construction substrate every index shares.
//
// Usage:
//
//	isqgraphbench [-o BENCH_PR6.json] [-scales 1k,10k,100k]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/doorgraph"
	"indoorsq/internal/idindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

// ---------------------------------------------------------------------------
// Pre-PR-6 reference implementation, kept verbatim.

type oldEdge struct {
	To int32
	W  float64
}

type oldGraph struct {
	n   int
	fwd [][]oldEdge
	rev [][]oldEdge
}

// oldBuild is the pre-PR-6 BuildWorkers: forward rows grown by append, fed
// one door index at a time over a channel, then the reverse adjacency
// derived in ascending source order.
func oldBuild(sp *indoor.Space, workers int) *oldGraph {
	n := sp.NumDoors()
	g := &oldGraph{n: n, fwd: make([][]oldEdge, n), rev: make([][]oldEdge, n)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range next {
				d := indoor.DoorID(di)
				for _, v := range sp.Door(d).Enterable {
					for _, nd := range sp.Partition(v).Leave {
						if nd == d {
							continue
						}
						w, _ := sp.WithinDoorsCached(v, d, nd)
						if math.IsInf(w, 1) {
							continue
						}
						g.fwd[di] = append(g.fwd[di], oldEdge{To: int32(nd), W: w})
					}
				}
			}
		}()
	}
	for di := 0; di < n; di++ {
		next <- di
	}
	close(next)
	wg.Wait()
	cnt := make([]int32, n)
	for di := 0; di < n; di++ {
		for _, e := range g.fwd[di] {
			cnt[e.To]++
		}
	}
	for di := 0; di < n; di++ {
		if cnt[di] > 0 {
			g.rev[di] = make([]oldEdge, 0, cnt[di])
		}
	}
	for di := 0; di < n; di++ {
		for _, e := range g.fwd[di] {
			g.rev[e.To] = append(g.rev[e.To], oldEdge{To: int32(di), W: e.W})
		}
	}
	return g
}

// oldHeap is the pre-PR-6 pq.Heap copied verbatim: a *generic* binary
// min-heap with swap-based sifts. It stays generic here (instantiated as
// oldHeap[int32]) so the "before" side pays the same gcshape/dictionary
// code the old package actually ran, not a hand-specialized variant.
type oldHeap[T any] struct {
	vs []T
	ps []float64
}

func (h *oldHeap[T]) Len() int { return len(h.vs) }

func (h *oldHeap[T]) Reset() {
	h.vs = h.vs[:0]
	h.ps = h.ps[:0]
}

func (h *oldHeap[T]) Push(v T, p float64) {
	h.vs = append(h.vs, v)
	h.ps = append(h.ps, p)
	i := len(h.vs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ps[parent] <= h.ps[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *oldHeap[T]) Pop() (T, float64) {
	v, p := h.vs[0], h.ps[0]
	last := len(h.vs) - 1
	h.vs[0], h.ps[0] = h.vs[last], h.ps[last]
	var zero T
	h.vs[last] = zero
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	h.siftDown(0)
	return v, p
}

func (h *oldHeap[T]) siftDown(i int) {
	n := len(h.vs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.ps[l] < h.ps[small] {
			small = l
		}
		if r < n && h.ps[r] < h.ps[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *oldHeap[T]) swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ps[i], h.ps[j] = h.ps[j], h.ps[i]
}

// oldMetrics mirrors the pre-PR-6 global sweep counters so the "before"
// loop pays the same two atomic adds per sweep the old package did.
var oldMetrics struct {
	sweeps  atomic.Int64
	settled atomic.Int64
}

// oldScratch is the pre-PR-6 epoch-stamped Dijkstra working set with the
// touch-then-relax inner loop.
type oldScratch struct {
	dist   []float64
	prev   []int32
	first  []int32
	stamp  []uint32
	epoch  uint32
	tmark  []uint32
	tepoch uint32
	h      oldHeap[int32]
}

func newOldScratch(n int) *oldScratch {
	return &oldScratch{
		dist:  make([]float64, n),
		prev:  make([]int32, n),
		first: make([]int32, n),
		stamp: make([]uint32, n),
		tmark: make([]uint32, n),
	}
}

func (s *oldScratch) reset() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.h.Reset()
}

func (s *oldScratch) touch(d int32) {
	if s.stamp[d] != s.epoch {
		s.stamp[d] = s.epoch
		s.dist[d] = math.Inf(1)
		s.prev[d] = -1
		s.first[d] = -1
	}
}

func (s *oldScratch) distAt(d int) float64 {
	if s.stamp[d] != s.epoch {
		return math.Inf(1)
	}
	return s.dist[d]
}

// runTargets replicates the pre-PR-6 RunTargets: targets stamped into the
// tmark array, checked on every pop of the shared loop.
func (s *oldScratch) runTargets(g *oldGraph, src int32, reverse bool, targets []int32) {
	s.tepoch++
	if s.tepoch == 0 {
		for i := range s.tmark {
			s.tmark[i] = 0
		}
		s.tepoch = 1
	}
	remaining := 0
	for _, t := range targets {
		if s.tmark[t] != s.tepoch {
			s.tmark[t] = s.tepoch
			remaining++
		}
	}
	s.run(g, src, reverse, remaining, 0, nil)
}

// run is the pre-PR-6 shared sweep loop, branch for branch: settled
// counting, the cancellation poll, the tmark target check, and the global
// metric adds on exit.
func (s *oldScratch) run(g *oldGraph, src int32, reverse bool, remainingTargets, every int, check func() error) error {
	adj := g.fwd
	if reverse {
		adj = g.rev
	}
	s.reset()
	s.touch(src)
	s.dist[src] = 0
	s.first[src] = src
	s.h.Push(src, 0)
	settled := 0
	defer func() {
		oldMetrics.sweeps.Add(1)
		oldMetrics.settled.Add(int64(settled))
	}()
	for s.h.Len() > 0 {
		d, dd := s.h.Pop()
		if dd > s.dist[d] {
			continue
		}
		settled++
		if check != nil && settled%every == 0 {
			if err := check(); err != nil {
				return err
			}
		}
		if remainingTargets > 0 && s.tmark[d] == s.tepoch {
			s.tmark[d] = s.tepoch - 1
			if remainingTargets--; remainingTargets == 0 {
				return nil
			}
		}
		for _, e := range adj[d] {
			nd := dd + e.W
			s.touch(e.To)
			if nd < s.dist[e.To] {
				s.dist[e.To] = nd
				s.prev[e.To] = d
				if d == src {
					s.first[e.To] = e.To
				} else {
					s.first[e.To] = s.first[d]
				}
				s.h.Push(e.To, nd)
			}
		}
	}
	return nil
}

// oldIDIndexMatrices replicates the pre-PR-6 IDINDEX construction core: one
// sweep per source door fanned out one source at a time over a channel,
// each row copied out and sorted exactly like the live build.
func oldIDIndexMatrices(sp *indoor.Space, g *oldGraph) (d2d []float64, idx, fh []int32) {
	n := g.n
	d2d = make([]float64, n*n)
	idx = make([]int32, n*n)
	fh = make([]int32, n*n)
	workers := runtime.GOMAXPROCS(0)
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newOldScratch(n)
			for src := range jobs {
				s.run(g, int32(src), false, 0, 0, nil)
				dist := d2d[src*n : (src+1)*n]
				fhRow := fh[src*n : (src+1)*n]
				for i := 0; i < n; i++ {
					dist[i] = s.distAt(i)
					if s.stamp[i] == s.epoch {
						fhRow[i] = s.first[i]
					} else {
						fhRow[i] = -1
					}
				}
				order := idx[src*n : (src+1)*n]
				for i := range order {
					order[i] = int32(i)
				}
				sort.Slice(order, func(a, b int) bool {
					da, db := dist[order[a]], dist[order[b]]
					if da != db {
						return da < db
					}
					return order[a] < order[b]
				})
			}
		}()
	}
	for src := 0; src < n; src++ {
		jobs <- src
	}
	close(jobs)
	wg.Wait()
	return d2d, idx, fh
}

// ---------------------------------------------------------------------------
// Harness.

type mb struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func run(f func(b *testing.B)) mb {
	r := testing.Benchmark(f)
	return mb{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// runPair interleaves before/after benchmark executions rounds times and
// keeps each side's fastest observation: the machine-noise floor of both
// loops under identical cache and GC conditions. The garbage collector is
// switched off for the duration — the measured loops are allocation-free,
// and background GC scanning the reference graph's many small row slices
// would otherwise perturb whichever side happens to be running.
func runPair(rounds int, before, after func(b *testing.B)) (mb, mb) {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	best := func(cur, obs mb) mb {
		if cur.NsOp == 0 || obs.NsOp < cur.NsOp {
			obs.AllocsOp = max64(obs.AllocsOp, cur.AllocsOp)
			return obs
		}
		cur.AllocsOp = max64(obs.AllocsOp, cur.AllocsOp)
		return cur
	}
	var b, a mb
	for i := 0; i < rounds; i++ {
		b = best(b, run(before))
		a = best(a, run(after))
	}
	return b, a
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func pct(before, after mb) float64 {
	if before.NsOp == 0 {
		return 0
	}
	return 100 * (before.NsOp - after.NsOp) / before.NsOp
}

// pctStr renders a reduction percentage as a signed delta: a 55.1%
// reduction prints "-55.1%", a regression prints "+12.0%".
func pctStr(p float64) string {
	return fmt.Sprintf("%+.1f%%", -p)
}

// timeBest runs f reps times and returns the fastest wall-clock run: build
// benchmarks are too slow for the testing harness at the 10^5 scale, and
// best-of-N is the standard noise floor for one-shot timings.
func timeBest(reps int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

// scale is one benchmark venue specification.
type scale struct {
	name       string
	rows, cols int
}

var allScales = []scale{
	{"1k", 31, 31},
	{"10k", 100, 99},
	{"100k", 316, 316},
}

type row struct {
	Before mb      `json:"before"`
	After  mb      `json:"after"`
	DropPc float64 `json:"ns_op_reduction_pct"`
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "isqgraphbench:", err)
	os.Exit(1)
}

func main() {
	var (
		out     = flag.String("o", "BENCH_PR6.json", "output JSON path")
		scales  = flag.String("scales", "1k,10k,100k", "comma-separated subset of 1k,10k,100k")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the whole run")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	want := map[string]bool{}
	for _, s := range strings.Split(*scales, ",") {
		want[strings.TrimSpace(s)] = true
	}

	report := map[string]any{}
	for _, sc := range allScales {
		if !want[sc.name] {
			continue
		}
		report[sc.name] = benchScale(sc)
	}

	full := map[string]any{
		"pr":    6,
		"title": "Flatten the door graph to CSR and overhaul the Dijkstra hot path",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note": "before = pre-PR-6 implementation kept verbatim in this tool ([][]Edge adjacency " +
				"built from a per-door channel feed; binary-heap, touch-then-relax sweep); after = live " +
				"internal/doorgraph (CSR struct-of-arrays from a counting pass; 4-ary heap, " +
				"stamp-on-improvement sweep). Distances asserted Float64bits-identical per venue before " +
				"timing. Builds are best-of-N wall clock on a warm distance cache; sweeps and queries " +
				"run under testing.Benchmark. cindex_spdq is absolute (no before): CINDEX never used " +
				"the door graph at query time, so PR 6 touches it only through the shared 4-ary heap.",
		},
		"benchmarks": report,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote", *out)
}

func benchScale(sc scale) map[string]any {
	params := spacegen.Params{
		Floors:     1,
		Rows:       sc.rows,
		Cols:       sc.cols,
		Hall:       spacegen.HallStraight,
		ExtraDoors: 4,
		OneWayFrac: 0.1,
		Imbalance:  0.3,
	}.Normalize()
	sp, err := spacegen.Generate(int64(sc.rows), params)
	if err != nil {
		die(err)
	}
	n := sp.NumDoors()
	fmt.Printf("[%s] venue: %d partitions, %d doors\n", sc.name, sp.NumPartitions(), n)
	res := map[string]any{}

	// Construction. The first build fills the intra-partition distance
	// cache (a PR 2 cost both layouts share), so one throwaway build warms
	// it and the timed builds compare pure graph derivation.
	g := doorgraph.Build(sp)
	res["venue"] = map[string]any{
		"rows": sc.rows, "cols": sc.cols, "partitions": sp.NumPartitions(),
		"doors": n, "edges": g.NumEdges(), "graph_bytes": g.SizeBytes(),
	}
	reps := 5
	if n > 50_000 {
		reps = 3
	}
	beforeBuild := timeBest(reps, func() { oldBuild(sp, 0) })
	afterBuild := timeBest(reps, func() { g = doorgraph.Build(sp) })
	buildDrop := 100 * (1 - float64(afterBuild)/float64(beforeBuild))
	res["doorgraph_build"] = map[string]any{
		"before_ms":                float64(beforeBuild.Nanoseconds()) / 1e6,
		"after_ms":                 float64(afterBuild.Nanoseconds()) / 1e6,
		"wall_clock_reduction_pct": buildDrop,
	}
	fmt.Printf("[%s] build: before %8.2fms | after %8.2fms | %s\n",
		sc.name, float64(beforeBuild.Nanoseconds())/1e6, float64(afterBuild.Nanoseconds())/1e6, pctStr(buildDrop))

	og := oldBuild(sp, 0)
	assertEquivalent(sc.name, sp, g, og)

	// Sources and targets spread deterministically over the door range.
	srcs := make([]int32, 64)
	for i := range srcs {
		srcs[i] = int32((uint64(i) * 2654435761) % uint64(n))
	}

	// Full single-source sweeps: the acceptance criterion of the PR.
	os1 := newOldScratch(n)
	os1.run(og, srcs[0], false, 0, 0, nil) // pre-size the old heap outside timing
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	beforeSweep, afterSweep := runPair(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			os1.run(og, srcs[i%len(srcs)], i%2 == 1, 0, 0, nil)
		}
	}, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Run(g, srcs[i%len(srcs)], i%2 == 1)
		}
	})
	res["sweep_single_source"] = row{beforeSweep, afterSweep, pct(beforeSweep, afterSweep)}
	fmt.Printf("[%s] sweep: before %10.0f ns/op %d allocs/op | after %10.0f ns/op %d allocs/op | %s\n",
		sc.name, beforeSweep.NsOp, beforeSweep.AllocsOp, afterSweep.NsOp, afterSweep.AllocsOp,
		pctStr(pct(beforeSweep, afterSweep)))

	// Goal-directed single-target sweeps (the SPDQ inner loop).
	oldTgt := make([]int32, 1)
	tgt := make([]int32, 1)
	beforeGoal, afterGoal := runPair(3, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oldTgt[0] = srcs[(i+17)%len(srcs)]
			os1.runTargets(og, srcs[i%len(srcs)], false, oldTgt)
		}
	}, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tgt[0] = srcs[(i+17)%len(srcs)]
			s.RunTargets(g, srcs[i%len(srcs)], false, tgt)
		}
	})
	res["sweep_single_target"] = row{beforeGoal, afterGoal, pct(beforeGoal, afterGoal)}
	fmt.Printf("[%s] goal:  before %10.0f ns/op %d allocs/op | after %10.0f ns/op %d allocs/op | %s\n",
		sc.name, beforeGoal.NsOp, beforeGoal.AllocsOp, afterGoal.NsOp, afterGoal.AllocsOp,
		pctStr(pct(beforeGoal, afterGoal)))

	// Full IDINDEX build at the 10^3 scale: n sweeps plus the row sorts.
	// Beyond that the O(n^2) matrices dominate any implementation (~1.6 GB
	// at 10^4, ~160 GB at 10^5), so larger scales carry the door-graph
	// build as their index-construction row.
	if n <= 2_000 {
		beforeIdx := timeBest(3, func() { oldIDIndexMatrices(sp, og) })
		afterIdx := timeBest(3, func() { idindex.NewWorkers(sp, 0) })
		drop := 100 * (1 - float64(afterIdx)/float64(beforeIdx))
		res["idindex_build"] = map[string]any{
			"before_ms":                float64(beforeIdx.Nanoseconds()) / 1e6,
			"after_ms":                 float64(afterIdx.Nanoseconds()) / 1e6,
			"wall_clock_reduction_pct": drop,
			"note": "before replays the pre-PR-6 construction core (old graph + old sweeps, " +
				"per-source channel feed, identical row sorts); after is the live idindex.NewWorkers",
		}
		fmt.Printf("[%s] idindex build: before %8.2fms | after %8.2fms | %s\n",
			sc.name, float64(beforeIdx.Nanoseconds())/1e6, float64(afterIdx.Nanoseconds())/1e6, pctStr(drop))
	}

	// CINDEX SPDQ, absolute: the paper's no-precomputation engine answering
	// shortest-path-distance queries on this venue.
	eng := cindex.New(sp)
	gen := workload.New(sp, 1)
	pts := gen.Points(32)
	var st query.Stats
	spdq := run(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pts[i%len(pts)]
			q := pts[(i+1)%len(pts)]
			if _, err := eng.SPD(p, q, &st); err != nil && err != query.ErrUnreachable {
				b.Fatal(err)
			}
		}
	})
	res["cindex_spdq"] = spdq
	fmt.Printf("[%s] cindex SPDQ: %10.0f ns/op %d allocs/op\n", sc.name, spdq.NsOp, spdq.AllocsOp)
	return res
}

// assertEquivalent cross-checks the tool's "before" implementation against
// the live package on a sample of sources: bitwise-equal distances in both
// directions, and equal edge counts. A divergence would invalidate the
// comparison, so it aborts the run.
func assertEquivalent(name string, sp *indoor.Space, g *doorgraph.Graph, og *oldGraph) {
	if g.N != og.n {
		die(fmt.Errorf("%s: node count %d vs %d", name, g.N, og.n))
	}
	total := 0
	for d := 0; d < og.n; d++ {
		total += len(og.fwd[d])
	}
	if total != g.NumEdges() {
		die(fmt.Errorf("%s: edge count %d vs %d", name, g.NumEdges(), total))
	}
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	os := newOldScratch(og.n)
	step := og.n/16 + 1
	for src := 0; src < og.n; src += step {
		for _, reverse := range []bool{false, true} {
			s.Run(g, int32(src), reverse)
			os.run(og, int32(src), reverse, 0, 0, nil)
			for d := 0; d < og.n; d++ {
				if math.Float64bits(s.DistAt(d)) != math.Float64bits(os.distAt(d)) {
					die(fmt.Errorf("%s: dist diverges at src %d door %d rev %v",
						name, src, d, reverse))
				}
			}
		}
	}
	_ = sp
}
