// Command isqcachebench measures the effect of the door-pair distance cache
// and writes the before/after comparison to a JSON report (BENCH_PR2.json).
//
// "Before" is CINDEX with the cache disabled — every intra-partition
// door-to-door distance recomputed on the fly, the paper's strict
// "no precomputation" behaviour. "After" is the same engine going through
// the space's lazy sharded cache. Both sides answer identically (enforced by
// the enginetest suite); only cost differs. A d2d kernel microbenchmark on a
// warm cache additionally documents ns/op and allocs/op of the steady state.
//
// Usage:
//
//	isqcachebench [-o BENCH_PR2.json] [-rows 6] [-cols 6] [-floors 2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// mb is one benchmark observation.
type mb struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// run executes one benchmark function under the testing harness.
func run(f func(b *testing.B)) mb {
	r := testing.Benchmark(f)
	return mb{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// pct returns the ns/op reduction from before to after, in percent.
func pct(before, after mb) float64 {
	if before.NsOp == 0 {
		return 0
	}
	return 100 * (before.NsOp - after.NsOp) / before.NsOp
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

func main() {
	var (
		out    = flag.String("o", "BENCH_PR2.json", "output JSON path")
		rows   = flag.Int("rows", 6, "grid rows per floor")
		cols   = flag.Int("cols", 6, "grid cols per floor")
		floors = flag.Int("floors", 2, "floors")
	)
	flag.Parse()

	sp := testspaces.RandomGridConcave(5, *rows, *cols, *floors, 6)
	gen := workload.New(sp, 1)
	objs := gen.Objects(500)
	pts := gen.Points(64)

	uncached := cindex.NewOpts(sp, cindex.Options{NoDistCache: true})
	uncached.SetObjects(objs)
	cached := cindex.New(sp)
	cached.SetObjects(objs)

	knn := func(eng query.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.KNN(pts[i%len(pts)], 10, &st); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	rq := func(eng query.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Range(pts[i%len(pts)], 40, &st); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	spd := func(eng query.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pts[i%len(pts)]
				q := pts[(i+1)%len(pts)]
				if _, err := eng.SPD(p, q, &st); err != nil && err != query.ErrUnreachable {
					b.Fatal(err)
				}
			}
		}
	}

	// Query sweeps: before (on-the-fly) first, then cached. The cached side
	// warms during its first iterations; the harness's steady state is the
	// amortized behaviour the cache exists for.
	report := map[string]any{}
	sweep := map[string]any{}
	type row struct {
		Before mb      `json:"before"`
		After  mb      `json:"after"`
		DropPc float64 `json:"ns_op_reduction_pct"`
	}
	for name, mk := range map[string]func(query.Engine) func(b *testing.B){
		"knn_k10": knn, "range_r40": rq, "spd": spd,
	} {
		before := run(mk(uncached))
		after := run(mk(cached))
		sweep[name] = row{Before: before, After: after, DropPc: pct(before, after)}
		fmt.Printf("CIndex %-10s before %10.0f ns/op %6d allocs/op | cached %10.0f ns/op %6d allocs/op | -%.1f%% ns/op\n",
			name, before.NsOp, before.AllocsOp, after.NsOp, after.AllocsOp, pct(before, after))
	}
	report["cindex_query_sweep"] = sweep

	// d2d kernel microbenchmark on one concave partition: the uncached
	// kernel runs a visibility attach + combine per call; the warm cached
	// kernel is a map index plus an atomic load, allocation-free.
	var cv indoor.PartitionID = -1
	for vi := 0; vi < sp.NumPartitions(); vi++ {
		part := sp.Partition(indoor.PartitionID(vi))
		if part.Kind != indoor.Staircase && !part.Poly.IsConvex() && len(part.Doors) >= 2 {
			cv = indoor.PartitionID(vi)
			break
		}
	}
	if cv < 0 {
		fmt.Fprintln(os.Stderr, "isqcachebench: no concave partition in the generated space")
		os.Exit(1)
	}
	doors := sp.Partition(cv).Doors
	for _, a := range doors { // warm every pair for the cached side
		for _, b := range doors {
			sp.WithinDoorsCached(cv, a, b)
		}
	}
	d2dUn := run(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp.WithinDoors(cv, doors[i%len(doors)], doors[(i+1)%len(doors)])
		}
	})
	d2dCa := run(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp.WithinDoorsCached(cv, doors[i%len(doors)], doors[(i+1)%len(doors)])
		}
	})
	fmt.Printf("d2d kernel (concave v=%d, %d doors): before %8.1f ns/op %d allocs/op | warm cached %8.1f ns/op %d allocs/op | -%.1f%%\n",
		cv, len(doors), d2dUn.NsOp, d2dUn.AllocsOp, d2dCa.NsOp, d2dCa.AllocsOp, pct(d2dUn, d2dCa))
	report["d2d_kernel_concave"] = map[string]any{
		"note":   "single concave partition, ordered door pairs; cached side warm — the zero-allocs_op value is the steady-state acceptance criterion",
		"before": d2dUn, "after": d2dCa, "ns_op_reduction_pct": pct(d2dUn, d2dCa),
	}

	cs := sp.DistCache().Stats()
	parts, cells := sp.DistCache().Filled()
	report["cache_state"] = map[string]any{
		"hits": cs.Hits, "misses": cs.Misses, "fills": cs.Fills,
		"partitions_resident": parts, "cells_filled": cells,
		"size_bytes": sp.DistCache().SizeBytes(),
	}

	full := map[string]any{
		"pr":    2,
		"title": "Memoized intra-partition distance kernel with a sharded concurrent door-pair cache",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note":  "before = CINDEX with -distcache=false (every door-pair distance recomputed on the fly, the paper's strict no-precomputation behaviour, on a space whose visibility graphs no longer precompute door-pair matrices); after = the same engine through the lazy sharded cache. Space: RandomGridConcave grid with concave partitions on every floor.",
		},
		"space": map[string]any{
			"rows": *rows, "cols": *cols, "floors": *floors,
			"partitions": sp.NumPartitions(), "doors": sp.NumDoors(),
		},
		"benchmarks": report,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "isqcachebench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "isqcachebench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
