// Command isqreachbench measures the reachability-aware pruning of PR 7
// (SCC condensation + spatial reach summaries, internal/reach) and writes
// the pruned-vs-unpruned comparison to a JSON report (BENCH_PR7.json).
//
// Venues are single-floor spacegen buildings at one-way door fractions 0,
// 0.25 and 0.5, each measured under two door regimes:
//
//   - open: every door open. The spanning tree of a generated venue is
//     bidirectional, so the door graph is one SCC and every pruning gate is
//     off — this regime measures the overhead of carrying the summaries
//     (the acceptance bound is <= 2% ns/op at OneWayFrac = 0).
//   - night: a temporal schedule closes every bidirectional door crossing a
//     vertical cut at 60% of the venue width, leaving one-way crossings
//     open. The east wing becomes one-way-reachable or fully severed, the
//     filtered condensation splits, and the gates go live.
//
// Both sides of every row run the identical query list — shortest-path
// queries emphasizing sources inside the severed wing (the case the SPD
// reachability gate short-circuits), plus range and kNN queries on both
// sides of the cut — and their answers are asserted identical (bitwise
// distances, equal id sets, equal errors) before any timing: pruning must
// never change an answer, only its cost. Visited-door counts come from
// query.Stats; timings are interleaved best-of-N with GC off.
//
// Usage:
//
//	isqreachbench [-o BENCH_PR7.json] [-smoke]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"testing"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/idmodel"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/reach"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/temporal"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "isqreachbench:", err)
	os.Exit(1)
}

// op is one query of the benchmark mix.
type op struct {
	kind byte // 'S', 'R', 'K'
	p, q indoor.Point
	r    float64
	k    int
}

// mix builds the query list for one venue: SPD pairs weighted toward
// wing-side sources (the sweeps the reachability gate can short-circuit
// when the wing is severed), plus range and kNN probes on both sides.
func mix(main, wing []indoor.Point, smoke bool) []op {
	pick := func(pts []indoor.Point, i int) indoor.Point { return pts[i%len(pts)] }
	nS, nRK := 16, 6
	if smoke {
		nS, nRK = 4, 2
	}
	var ops []op
	for i := 0; i < nS; i++ {
		ops = append(ops, op{kind: 'S', p: pick(wing, i), q: pick(main, i+3)})
	}
	for i := 0; i < nS/2; i++ {
		ops = append(ops, op{kind: 'S', p: pick(main, i), q: pick(wing, i+5)})
		ops = append(ops, op{kind: 'S', p: pick(main, i), q: pick(main, i+7)})
	}
	for i := 0; i < nRK; i++ {
		ops = append(ops, op{kind: 'R', p: pick(main, i), r: 30})
		ops = append(ops, op{kind: 'R', p: pick(wing, i), r: 30})
		ops = append(ops, op{kind: 'K', p: pick(main, i+1), k: 8})
		ops = append(ops, op{kind: 'K', p: pick(wing, i+1), k: 8})
	}
	return ops
}

// runOps executes the list once, accumulating visited-door counts.
func runOps(e query.Engine, ops []op) (visited int64) {
	for _, o := range ops {
		var st query.Stats
		var err error
		switch o.kind {
		case 'S':
			_, err = e.SPD(o.p, o.q, &st)
		case 'R':
			_, err = e.Range(o.p, o.r, &st)
		case 'K':
			_, err = e.KNN(o.p, o.k, &st)
		}
		if err != nil && !errors.Is(err, query.ErrUnreachable) {
			die(fmt.Errorf("%s: query failed: %w", e.Name(), err))
		}
		visited += int64(st.VisitedDoors)
	}
	return visited
}

// assertSame runs the list on both engines and requires identical answers:
// equal range id sets, bitwise-equal kNN and SPD distances, equal errors.
func assertSame(pruned, unpruned query.Engine, ops []op) {
	var st query.Stats
	for _, o := range ops {
		switch o.kind {
		case 'S':
			gp, ep := pruned.SPD(o.p, o.q, &st)
			gu, eu := unpruned.SPD(o.p, o.q, &st)
			if (ep == nil) != (eu == nil) || (ep != nil && !errors.Is(ep, eu) && !errors.Is(eu, ep)) {
				die(fmt.Errorf("SPD err diverges: pruned %v, unpruned %v", ep, eu))
			}
			if ep == nil && math.Float64bits(gp.Dist) != math.Float64bits(gu.Dist) {
				die(fmt.Errorf("SPD dist diverges: %.17g vs %.17g", gp.Dist, gu.Dist))
			}
		case 'R':
			gp, ep := pruned.Range(o.p, o.r, &st)
			gu, eu := unpruned.Range(o.p, o.r, &st)
			if (ep == nil) != (eu == nil) {
				die(fmt.Errorf("Range err diverges: %v vs %v", ep, eu))
			}
			sp := append([]int32(nil), gp...)
			su := append([]int32(nil), gu...)
			sort.Slice(sp, func(i, j int) bool { return sp[i] < sp[j] })
			sort.Slice(su, func(i, j int) bool { return su[i] < su[j] })
			if len(sp) != len(su) {
				die(fmt.Errorf("Range size diverges: %d vs %d", len(sp), len(su)))
			}
			for i := range sp {
				if sp[i] != su[i] {
					die(fmt.Errorf("Range ids diverge at %d: %d vs %d", i, sp[i], su[i]))
				}
			}
		case 'K':
			gp, ep := pruned.KNN(o.p, o.k, &st)
			gu, eu := unpruned.KNN(o.p, o.k, &st)
			if (ep == nil) != (eu == nil) || len(gp) != len(gu) {
				die(fmt.Errorf("KNN diverges: %d results (%v) vs %d (%v)", len(gp), ep, len(gu), eu))
			}
			for i := range gp {
				if gp[i].ID != gu[i].ID ||
					math.Float64bits(gp[i].Dist) != math.Float64bits(gu[i].Dist) {
					die(fmt.Errorf("KNN diverges at %d: %v vs %v", i, gp[i], gu[i]))
				}
			}
		}
	}
}

// wingSchedule closes every bidirectional door crossing the vertical line
// x = cut during night hours, leaving one-way crossings (and everything
// else) open.
func wingSchedule(sp *indoor.Space, cut float64) *temporal.Schedule {
	sch := temporal.NewSchedule()
	for di := 0; di < sp.NumDoors(); di++ {
		d := sp.Door(indoor.DoorID(di))
		if len(d.Parts) != 2 || len(d.Enterable) < 2 {
			continue
		}
		a := sp.Partition(d.Parts[0]).MBR.Center()
		b := sp.Partition(d.Parts[1]).MBR.Center()
		if (a.X < cut) != (b.X < cut) {
			sch.Set(indoor.DoorID(di), temporal.Interval{Open: 8, Close: 20})
		}
	}
	return sch
}

// benchNs times one full pass over the query list, interleaving the two
// sides rounds times and keeping each side's fastest observation, with the
// GC off for the duration.
func benchNs(rounds int, pruned, unpruned query.Engine, ops []op) (nsP, nsU float64) {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	one := func(e query.Engine) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runOps(e, ops)
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	nsP, nsU = math.Inf(1), math.Inf(1)
	for i := 0; i < rounds; i++ {
		nsP = math.Min(nsP, one(pruned))
		nsU = math.Min(nsU, one(unpruned))
	}
	return nsP, nsU
}

type row struct {
	Engine          string  `json:"engine"`
	VisitedPruned   int64   `json:"visited_doors_pruned"`
	VisitedUnpruned int64   `json:"visited_doors_unpruned"`
	VisitedDropPct  float64 `json:"visited_doors_reduction_pct"`
	NsPruned        float64 `json:"ns_per_pass_pruned"`
	NsUnpruned      float64 `json:"ns_per_pass_unpruned"`
	NsDropPct       float64 `json:"ns_reduction_pct"`
	SCCs            int     `json:"sccs"`
	SummaryBytes    int64   `json:"summary_bytes"`
	ReachBuildMs    float64 `json:"reach_build_ms"`
}

func drop(unpruned, pruned float64) float64 {
	if unpruned == 0 {
		return 0
	}
	return 100 * (unpruned - pruned) / unpruned
}

// measure produces one report row from a pruned/unpruned engine pair.
func measure(name string, pruned, unpruned query.Engine, ops []op,
	r *reach.Reach, buildMs float64, rounds int) row {
	assertSame(pruned, unpruned, ops)
	vp := runOps(pruned, ops)
	vu := runOps(unpruned, ops)
	nsP, nsU := benchNs(rounds, pruned, unpruned, ops)
	rw := row{
		Engine:          name,
		VisitedPruned:   vp,
		VisitedUnpruned: vu,
		VisitedDropPct:  drop(float64(vu), float64(vp)),
		NsPruned:        nsP,
		NsUnpruned:      nsU,
		NsDropPct:       drop(nsU, nsP),
		SCCs:            r.NumSCCs(),
		SummaryBytes:    r.SizeBytes(),
		ReachBuildMs:    buildMs,
	}
	fmt.Printf("  %-7s visited %6d -> %6d (%+.1f%%) | ns/pass %11.0f -> %11.0f (%+.1f%%) | %d SCCs\n",
		name, vu, vp, -rw.VisitedDropPct, nsU, nsP, -rw.NsDropPct, rw.SCCs)
	return rw
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

func main() {
	var (
		out   = flag.String("o", "", "output JSON path (empty: no file)")
		smoke = flag.Bool("smoke", false, "tiny venue, one timing round, no report")
	)
	flag.Parse()

	rows, cols, objects, rounds := 24, 48, 400, 3
	if *smoke {
		rows, cols, objects, rounds = 6, 12, 60, 1
	}

	var configs []map[string]any
	for _, oneWay := range []float64{0, 0.25, 0.5} {
		params := spacegen.Params{
			Floors: 1, Rows: rows, Cols: cols, Hall: spacegen.HallStraight,
			ExtraDoors: 10, OneWayFrac: oneWay, Imbalance: 0.3,
		}.Normalize()
		sp, err := spacegen.Generate(int64(7000+oneWay*100), params)
		if err != nil {
			die(err)
		}
		objs := spacegen.Objects(sp, 7001, objects)

		// Classify room centers as main (west of the cut) or wing (east).
		maxX := math.Inf(-1)
		for i := 0; i < sp.NumPartitions(); i++ {
			if x := sp.Partition(indoor.PartitionID(i)).MBR.MaxX; x > maxX {
				maxX = x
			}
		}
		cut := 0.6 * maxX
		var main, wing []indoor.Point
		for i := 0; i < sp.NumPartitions(); i++ {
			part := sp.Partition(indoor.PartitionID(i))
			if part.Kind != indoor.Room {
				continue
			}
			c := part.MBR.Center()
			pt := indoor.At(c.X, c.Y, part.Floor)
			if c.X < cut {
				main = append(main, pt)
			} else {
				wing = append(wing, pt)
			}
		}
		ops := mix(main, wing, *smoke)
		fmt.Printf("[oneway=%.2f] %d partitions, %d doors, %d queries\n",
			oneWay, sp.NumPartitions(), sp.NumDoors(), len(ops))

		for _, regime := range []string{"open", "night"} {
			mP, mU := idmodel.New(sp), idmodel.New(sp)
			cP, cU := cindex.New(sp), cindex.New(sp)
			mU.SetReach(nil)
			cU.SetReach(nil)
			for _, e := range []query.Engine{mP, mU, cP, cU} {
				e.SetObjects(objs)
			}

			var engines [2][2]query.Engine // [engine][pruned/unpruned]
			var r *reach.Reach
			var buildMs float64
			if regime == "open" {
				engines = [2][2]query.Engine{{mP, mU}, {cP, cU}}
				r = mP.Reach()
				start := time.Now()
				reach.FromSpace(sp, nil, 0)
				buildMs = float64(time.Since(start).Nanoseconds()) / 1e6
			} else {
				sch := wingSchedule(sp, cut)
				if sch.Len() == 0 {
					die(fmt.Errorf("oneway=%.2f: wing schedule closed no doors", oneWay))
				}
				const night = 23.0
				open := sch.At(night)
				start := time.Now()
				r = reach.FromSpace(sp, open, 0)
				buildMs = float64(time.Since(start).Nanoseconds()) / 1e6
				eM := temporal.NewIDModel(mP, sch, night)
				eC := temporal.NewCIndex(cP, sch, night)
				uM := mU.WithOpen(open)
				uC := cU.WithOpen(open)
				uM.SetObjects(objs)
				uC.SetObjects(objs)
				engines = [2][2]query.Engine{{eM, uM}, {eC, uC}}
				r = eM.Reach()
			}

			fmt.Printf("[oneway=%.2f %s]\n", oneWay, regime)
			var rws []row
			for i, name := range []string{"IDModel", "CIndex"} {
				rws = append(rws, measure(name, engines[i][0], engines[i][1], ops, r, buildMs, rounds))
			}
			configs = append(configs, map[string]any{
				"oneway_frac": oneWay,
				"regime":      regime,
				"doors":       sp.NumDoors(),
				"partitions":  sp.NumPartitions(),
				"rows":        rws,
			})
		}
	}

	if *smoke {
		fmt.Println("smoke ok: pruned and unpruned answers identical on every row")
		return
	}
	full := map[string]any{
		"pr":    7,
		"title": "Reachability-aware pruning: SCC condensation + spatial reach summaries",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note": "pruned = engines with their internal/reach summaries (per-hour filtered " +
				"summaries under the night regime, via internal/temporal); unpruned = twin engines " +
				"with SetReach(nil) (WithOpen views at night). Answers asserted identical per row " +
				"before timing. open regime: every door open — the generated venue's door graph is " +
				"one SCC, every gate is off, and the rows measure pure summary-carrying overhead. " +
				"night regime: bidirectional doors crossing a 60%-width cut are closed, one-way " +
				"crossings stay open; the query list emphasizes SPD sources inside the severed wing. " +
				"ns_per_pass is one pass over the full query list, interleaved best-of-3 with GC off.",
		},
		"configs": configs,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	path := *out
	if path == "" {
		path = "BENCH_PR7.json"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote", path)
}
