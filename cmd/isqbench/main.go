// Command isqbench runs the paper's evaluation tasks and prints each
// regenerated figure as a text table (or CSV).
//
// Usage:
//
//	isqbench [-task A|B1..B7|all] [-datasets SYN5,MZB,...] [-engines ...]
//	         [-objects 1000] [-queries 10] [-k 10] [-seed 1] [-workers 1] [-csv]
//
// Examples:
//
//	isqbench -task A                 # model size + construction time
//	isqbench -task B5 -datasets CPH  # SPDQ vs s2t on the airport
//	isqbench -task all -csv > results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"indoorsq/internal/bench"
)

func main() {
	var (
		task     = flag.String("task", "all", "evaluation task: A, B1..B7, or all")
		datasets = flag.String("datasets", "", "comma-separated dataset subset for B2-B5 (default: paper's)")
		engines  = flag.String("engines", "", "comma-separated engine subset (default: all five)")
		objects  = flag.Int("objects", 1000, "default object count |O|")
		queries  = flag.Int("queries", 10, "query instances per setting")
		k        = flag.Int("k", 10, "default k for kNNQ")
		seed     = flag.Int64("seed", 1, "workload seed")
		workers  = flag.Int("workers", 1, "concurrent query workers per setting (0 = all CPUs)")
		dcache   = flag.Bool("distcache", true, "memoize door-pair distances in the space's lazy cache (false: engines that compute distances at query time recompute on the fly; answers are identical)")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		timeout  = flag.Duration("timeout", 0, "per-query deadline (0 = unbounded); queries cut off by it are counted, not failed")
	)
	flag.Parse()

	s := bench.NewSuite()
	s.Objects = *objects
	s.Queries = *queries
	s.K = *k
	s.Seed = *seed
	s.Workers = *workers
	s.DistCache = *dcache
	s.Timeout = *timeout
	if *engines != "" {
		s.Engines = strings.Split(*engines, ",")
	}

	tasks := bench.Tasks()
	if *task != "all" {
		tasks = strings.Split(*task, ",")
	}

	for _, tk := range tasks {
		start := time.Now()
		var (
			series []*bench.Series
			err    error
		)
		switch {
		case *datasets != "" && (tk == "B2" || tk == "B3" || tk == "B4" || tk == "B5"):
			ds := strings.Split(*datasets, ",")
			switch tk {
			case "B2":
				series, err = s.RunB2(ds)
			case "B3":
				series, err = s.RunB3(ds)
			case "B4":
				series, err = s.RunB4(ds)
			case "B5":
				series, err = s.RunB5(ds)
			}
		case *datasets != "" && tk == "A":
			series, err = s.RunA(strings.Split(*datasets, ","))
		default:
			series, err = s.RunTask(tk)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "isqbench: task %s: %v\n", tk, err)
			os.Exit(1)
		}
		if *csv {
			bench.WriteAllCSV(os.Stdout, series)
		} else {
			fmt.Printf("== Task %s (%.1fs) ==\n\n", tk, time.Since(start).Seconds())
			bench.WriteAll(os.Stdout, series)
		}
	}

	if n := s.TimedOut(); n > 0 {
		if *csv {
			fmt.Printf("timeout,cutoff_queries,%d\n", n)
		} else {
			fmt.Printf("== %d queries cut off by -timeout %v (partial cost kept in the averages) ==\n\n", n, *timeout)
		}
	}

	if report := s.CacheReport(); len(report) > 0 {
		if *csv {
			fmt.Println("cache,engine,hits,misses,hit_rate")
			for _, c := range report {
				fmt.Printf("cache,%s,%d,%d,%.4f\n", c.Engine, c.Hits, c.Misses, c.HitRate())
			}
		} else {
			fmt.Println("== Distance-cache effectiveness ==")
			fmt.Println()
			fmt.Printf("%-8s  %12s  %12s  %8s\n", "engine", "hits", "misses", "hit-rate")
			for _, c := range report {
				fmt.Printf("%-8s  %12d  %12d  %7.1f%%\n", c.Engine, c.Hits, c.Misses, 100*c.HitRate())
			}
		}
	}
}
