// Command isqobsbench measures the steady-state cost of the observability
// layer on the hot query paths and writes the comparison to a JSON report
// (BENCH_PR4.json).
//
// "Disabled" runs SPDCtx/RangeCtx/KNNCtx under a live context with no obs
// binding: query.Begin finds nothing and the per-query accounting is a
// single context lookup. "Enabled" binds a live metrics registry to the
// same context, so every query pays the series lookup, the counter deltas,
// and one histogram observation. A third SPD variant additionally attaches
// a per-query trace, paying the span records too. The acceptance criterion
// is that the enabled registry costs within noise of the disabled path —
// the enabled SPDQ ns/op must not regress by more than ~2%, and the
// disabled path must allocate exactly as much as the plain entry points.
//
// Usage:
//
//	isqobsbench [-o BENCH_PR4.json] [-rows 6] [-cols 6] [-floors 2]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"indoorsq/internal/cindex"
	"indoorsq/internal/obs"
	"indoorsq/internal/query"
	"indoorsq/internal/testspaces"
	"indoorsq/internal/workload"
)

// mb is one benchmark observation.
type mb struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// run executes one benchmark function under the testing harness.
func run(f func(b *testing.B)) mb {
	r := testing.Benchmark(f)
	return mb{
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// overheadPct returns how much slower b is than a, in percent (negative
// means b measured faster, i.e. pure noise).
func overheadPct(a, b mb) float64 {
	if a.NsOp == 0 {
		return 0
	}
	return 100 * (b.NsOp - a.NsOp) / a.NsOp
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.Index(line, ":"); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return runtime.GOARCH
}

func main() {
	var (
		out    = flag.String("o", "BENCH_PR4.json", "output JSON path")
		rows   = flag.Int("rows", 6, "grid rows per floor")
		cols   = flag.Int("cols", 6, "grid cols per floor")
		floors = flag.Int("floors", 2, "floors")
	)
	flag.Parse()

	sp := testspaces.RandomGridConcave(5, *rows, *cols, *floors, 6)
	gen := workload.New(sp, 1)
	objs := gen.Objects(500)
	pts := gen.Points(64)

	eng := cindex.New(sp)
	eng.SetObjects(objs)
	ec := query.AsCtx(eng)

	// A live, never-cancelled context: both sides pay the same amortized
	// ctx.Err probes, isolating the obs delta from the PR3 tracking cost.
	liveCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	obsCtx := obs.WithRegistry(liveCtx, reg)

	// Warm the lazy door-pair distance cache once over the full point sweep
	// so no side pays first-touch fills during measurement.
	var warm query.Stats
	for i := range pts {
		if _, err := eng.SPD(pts[i], pts[(i+1)%len(pts)], &warm); err != nil && err != query.ErrUnreachable {
			fmt.Fprintln(os.Stderr, "isqobsbench: warmup:", err)
			os.Exit(1)
		}
	}

	spdPlain := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SPD(pts[i%len(pts)], pts[(i+1)%len(pts)], &st); err != nil && err != query.ErrUnreachable {
				b.Fatal(err)
			}
		}
	}
	spdCtx := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ec.SPDCtx(ctx, pts[i%len(pts)], pts[(i+1)%len(pts)], &st); err != nil && err != query.ErrUnreachable {
					b.Fatal(err)
				}
			}
		}
	}
	// spdTraced binds a fresh trace per iteration on top of the registry —
	// the /v1/trace request shape.
	spdTraced := func(b *testing.B) {
		var st query.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := obs.WithTrace(obsCtx, obs.NewTrace())
			if _, err := ec.SPDCtx(ctx, pts[i%len(pts)], pts[(i+1)%len(pts)], &st); err != nil && err != query.ErrUnreachable {
				b.Fatal(err)
			}
		}
	}
	rangeCtx := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ec.RangeCtx(ctx, pts[i%len(pts)], 40, &st); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	knnCtx := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ec.KNNCtx(ctx, pts[i%len(pts)], 10, &st); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	type row struct {
		Disabled    mb      `json:"disabled"`
		Enabled     mb      `json:"enabled"`
		OverheadPct float64 `json:"ns_op_overhead_pct"`
	}
	report := map[string]any{}
	sweep := map[string]any{}
	var spdDisabled, spdEnabled mb
	for _, bm := range []struct {
		name     string
		disabled func(b *testing.B)
		enabled  func(b *testing.B)
	}{
		{"spd", spdCtx(liveCtx), spdCtx(obsCtx)},
		{"spd_traced", spdCtx(liveCtx), spdTraced},
		{"range_r40", rangeCtx(liveCtx), rangeCtx(obsCtx)},
		{"knn_k10", knnCtx(liveCtx), knnCtx(obsCtx)},
	} {
		before := run(bm.disabled)
		after := run(bm.enabled)
		if bm.name == "spd" {
			spdDisabled, spdEnabled = before, after
		}
		sweep[bm.name] = row{Disabled: before, Enabled: after, OverheadPct: overheadPct(before, after)}
		fmt.Printf("CIndex %-10s disabled %10.0f ns/op %6d allocs/op | enabled %10.0f ns/op %6d allocs/op | %+.2f%% ns/op\n",
			bm.name, before.NsOp, before.AllocsOp, after.NsOp, after.AllocsOp, overheadPct(before, after))
	}
	report["cindex_obs_overhead"] = sweep

	// The disabled path must also be free relative to the plain entry
	// points: same allocs/op, ns/op within noise (this is the PR3 tracking
	// cost, not an obs cost, but the report keeps the chain explicit).
	plain := run(spdPlain)
	report["spd_disabled_vs_plain"] = map[string]any{
		"plain":                   plain,
		"disabled_ctx":            spdDisabled,
		"ns_op_overhead_pct":      overheadPct(plain, spdDisabled),
		"allocs_op_match":         plain.AllocsOp == spdDisabled.AllocsOp,
		"acceptance_criterion":    "allocs_op_match == true",
		"enabled_ns_overhead_pct": overheadPct(spdDisabled, spdEnabled),
	}
	fmt.Printf("SPD plain %10.0f ns/op %6d allocs/op | disabled-ctx %10.0f ns/op %6d allocs/op | %+.2f%% ns/op\n",
		plain.NsOp, plain.AllocsOp, spdDisabled.NsOp, spdDisabled.AllocsOp, overheadPct(plain, spdDisabled))

	full := map[string]any{
		"pr":    4,
		"title": "Observability layer overhead on hot query paths (metrics registry, per-query trace)",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   cpuModel(),
			"nproc": runtime.NumCPU(),
			"note":  "disabled = Ctx entry points under a live context with no obs binding (query.Begin finds nothing); enabled = same context with a live obs.Registry bound, paying the series lookup, counter deltas, and one histogram observation per query. spd_traced additionally binds a fresh obs.Trace per query (the /v1/trace shape). Space: RandomGridConcave grid, lazy distance cache pre-warmed on all sides.",
		},
		"space": map[string]any{
			"rows": *rows, "cols": *cols, "floors": *floors,
			"partitions": sp.NumPartitions(), "doors": sp.NumDoors(),
		},
		"acceptance_criterion": "cindex_obs_overhead.spd.ns_op_overhead_pct <= 2 and spd_disabled_vs_plain.allocs_op_match",
		"benchmarks":           report,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "isqobsbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "isqobsbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
