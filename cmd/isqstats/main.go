// Command isqstats prints the dataset statistics of Table 4 and, with
// -hist, the #dv distributions of Figure 7.
//
// Usage:
//
//	isqstats [-datasets SYN5,MZB,HSM,CPH] [-gamma -1] [-hist]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"indoorsq/internal/dataset"
)

func main() {
	var (
		names = flag.String("datasets", strings.Join(dataset.Names(), ","), "datasets to summarize")
		gamma = flag.Int("gamma", -1, "crucial-partition threshold override (-1: per-dataset tuned γ)")
		hist  = flag.Bool("hist", false, "print the #dv histograms (Figure 7)")
	)
	flag.Parse()

	fmt.Printf("%-7s %7s %6s %11s %9s %7s %8s %13s %4s %4s %4s %4s\n",
		"dataset", "floors", "doors", "partitions", "hallways", "stairs", "crucial", "extent(m)", "Q1", "Q2", "Q3", "max")
	for _, name := range strings.Split(*names, ",") {
		info, err := dataset.Build(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "isqstats: %v\n", err)
			os.Exit(1)
		}
		g := info.Gamma
		if *gamma >= 0 {
			g = *gamma
		}
		st := info.Space.SpaceStats(g)
		fmt.Printf("%-7s %7d %6d %11d %9d %7d %8d %6.0fx%-6.0f %4d %4d %4d %4d\n",
			name, st.Floors, st.Doors, st.Partitions, st.Hallways, st.Staircases,
			st.Crucial, st.Length, st.Width, st.Q1, st.Q2, st.Q3, st.Max)
		if *hist {
			keys := make([]int, 0, len(st.Hist))
			for k := range st.Hist {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			fmt.Printf("  #dv histogram:")
			for _, k := range keys {
				fmt.Printf(" %d:%d", k, st.Hist[k])
			}
			fmt.Println()
		}
	}
}
