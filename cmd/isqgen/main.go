// Command isqgen exports benchmark datasets as JSON space files (the
// interchange format of EncodeSpace/DecodeSpace), so other tools — or other
// implementations — can consume the exact venues this repository benchmarks.
//
// Usage:
//
//	isqgen -dataset SYN5 -out syn5.json
//	isqgen -dataset CPH            # writes CPH.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"indoorsq/internal/dataset"
	"indoorsq/internal/indoor"
)

func main() {
	var (
		ds  = flag.String("dataset", "CPH", "dataset to export")
		out = flag.String("out", "", "output file (default <dataset>.json)")
	)
	flag.Parse()

	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *ds + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := indoor.EncodeSpace(f, info.Space); err != nil {
		log.Fatal(err)
	}
	st := info.Space.SpaceStats(info.Gamma)
	fmt.Printf("wrote %s: %d partitions, %d doors, %d floors\n",
		path, st.Partitions, st.Doors, st.Floors)
}
