// Command isqroutebench measures the cost-based engine routing of the
// multi-venue serving tier (internal/tenant) and writes the routed vs
// pinned-engine comparison to a JSON report (BENCH_PR9.json).
//
// The workload is a skewed multi-venue mix: three generated venues of
// different sizes, each with its own query-class skew (one range-heavy, one
// kNN-heavy, one routing-heavy), interleaved round-robin the way shard
// traffic would arrive. The identical op streams run once pinned to each
// engine (the ?engine= deterministic override) and once routed (each venue's
// router picks the engine per query class from its observed latencies, after
// its explore phase). Every mode's answers are asserted identical to the
// baseline before any timing is reported — routing must never change an
// answer, only who computes it.
//
// The report records per-mode p50/p95/mean over the identical per-op
// latency samples, the routed-vs-best-pinned gap, whether routed beats the
// worst pinned engine, and each venue's final decision table with its
// evidence. A warmup pass runs every engine over the full stream first so
// all modes measure against equally warm distance caches.
//
// Usage:
//
//	isqroutebench [-o BENCH_PR9.json] [-smoke]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"indoorsq/internal/exec"
	"indoorsq/internal/indoor"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/tenant"
	"indoorsq/internal/workload"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, "isqroutebench:", err)
	os.Exit(1)
}

// venueCfg is one venue of the skewed workload: its generated shape plus
// the query-class weights (range, knn, spd) its traffic is skewed toward.
type venueCfg struct {
	id      string
	seed    int64
	params  spacegen.Params
	weights [3]float64
	radius  float64
}

func venueCfgs(smoke bool) []venueCfg {
	if smoke {
		return []venueCfg{
			{"boutique", 31, spacegen.Params{Floors: 1, Rows: 2, Cols: 3, ExtraDoors: 2}, [3]float64{0.7, 0.2, 0.1}, 8},
			{"mall", 32, spacegen.Params{Floors: 1, Rows: 2, Cols: 4, ExtraDoors: 2}, [3]float64{0.1, 0.2, 0.7}, 10},
		}
	}
	return []venueCfg{
		{"boutique", 31, spacegen.Params{Floors: 1, Rows: 3, Cols: 4, ExtraDoors: 3}, [3]float64{0.7, 0.2, 0.1}, 12},
		{"mall", 32, spacegen.Params{Floors: 2, Rows: 3, Cols: 5, ExtraDoors: 4}, [3]float64{0.2, 0.7, 0.1}, 16},
		{"campus", 33, spacegen.Params{Floors: 3, Rows: 4, Cols: 6, ExtraDoors: 5}, [3]float64{0.1, 0.2, 0.7}, 20},
	}
}

// plan pre-generates one venue's deterministic op stream.
func plan(cfg venueCfg, sp *indoor.Space, n int) []exec.Op {
	pts := workload.New(sp, cfg.seed*5+1).Points(64)
	rng := rand.New(rand.NewSource(cfg.seed * 11))
	ops := make([]exec.Op, n)
	for i := range ops {
		p := pts[rng.Intn(len(pts))]
		x := rng.Float64()
		switch {
		case x < cfg.weights[0]:
			ops[i] = exec.Op{Kind: exec.RangeQ, P: p, R: cfg.radius}
		case x < cfg.weights[0]+cfg.weights[1]:
			ops[i] = exec.Op{Kind: exec.KNNQ, P: p, K: 5}
		default:
			ops[i] = exec.Op{Kind: exec.SPDQ, P: p, Q: pts[rng.Intn(len(pts))]}
		}
	}
	return ops
}

// answer is the comparable digest of one op's result.
type answer struct {
	ids  []int32
	dist float64
	n    int
	err  bool
}

func digest(op exec.Op, r exec.Result) answer {
	a := answer{err: r.Err != nil}
	switch op.Kind {
	case exec.RangeQ:
		a.ids = append([]int32(nil), r.IDs...)
		sort.Slice(a.ids, func(i, j int) bool { return a.ids[i] < a.ids[j] })
	case exec.KNNQ:
		a.n = len(r.Neighbors)
	case exec.SPDQ:
		a.dist = r.Path.Dist
	}
	return a
}

func sameAnswer(a, b answer) bool {
	// SPD distances agree across engines only to float tolerance (different
	// relaxation orders), matching the 1e-6 bound the differential suite uses.
	if a.err != b.err || a.n != b.n || math.Abs(a.dist-b.dist) > 1e-6 || len(a.ids) != len(b.ids) {
		return false
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			return false
		}
	}
	return true
}

type modeReport struct {
	Mode   string  `json:"mode"`
	Ops    int     `json:"ops"`
	Errs   int     `json:"errs"`
	P50Ns  int64   `json:"p50Ns"`
	P95Ns  int64   `json:"p95Ns"`
	MeanNs int64   `json:"meanNs"`
	P50    string  `json:"p50"`
	P95    string  `json:"p95"`
	TotalS float64 `json:"totalQueryS"`
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// runMode replays every venue's stream through the tier in interleaved
// rounds, one batch per venue per round — the arrival pattern of sharded
// multi-venue traffic — and returns the latency report plus the answers.
func runMode(tier *tenant.Tier, cfgs []venueCfg, plans map[string][]exec.Op,
	rounds, batch int, override, label string) (modeReport, map[string][]answer, error) {
	lat := make([]time.Duration, 0, rounds*batch*len(cfgs))
	answers := make(map[string][]answer, len(cfgs))
	errs := 0
	var total time.Duration
	for round := 0; round < rounds; round++ {
		for _, cfg := range cfgs {
			ops := plans[cfg.id][round*batch : (round+1)*batch]
			results, _, _, err := tier.Run(context.Background(), cfg.id, ops, override)
			if err != nil {
				return modeReport{}, nil, fmt.Errorf("mode %s venue %s: %w", label, cfg.id, err)
			}
			for i, r := range results {
				lat = append(lat, r.Elapsed)
				total += r.Elapsed
				if r.Err != nil {
					errs++
				}
				answers[cfg.id] = append(answers[cfg.id], digest(ops[i], r))
			}
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var mean time.Duration
	if len(lat) > 0 {
		mean = total / time.Duration(len(lat))
	}
	p50, p95 := percentile(lat, 0.50), percentile(lat, 0.95)
	return modeReport{
		Mode: label, Ops: len(lat), Errs: errs,
		P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), MeanNs: mean.Nanoseconds(),
		P50: p50.String(), P95: p95.String(), TotalS: total.Seconds(),
	}, answers, nil
}

func main() {
	var (
		out   = flag.String("o", "BENCH_PR9.json", "report path")
		smoke = flag.Bool("smoke", false, "tiny venues, short streams, no report")
	)
	flag.Parse()

	cfgs := venueCfgs(*smoke)
	engines := bundle.EngineNames
	rounds, batch, objects := 40, 40, 200
	if *smoke {
		engines = []string{"IDModel", "IDIndex", "CIndex"}
		rounds, batch, objects = 5, 8, 24
	}

	specs := make([]tenant.VenueSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = tenant.VenueSpec{
			ID: cfg.id, GenSeed: cfg.seed, GenParams: cfg.params,
			Engines: engines, Objects: objects,
		}
	}
	buildStart := time.Now()
	tier, err := tenant.New(specs, tenant.Options{
		Shards: 2, Seed: 1,
		// Explore briefly and shadow-sample sparsely: the explore phase and
		// the freshness samples are routed traffic too and land in the same
		// measured stream as everything else.
		Router: tenant.RouterConfig{ExplorePerEngine: 3, ReevalEvery: 64, SampleEvery: 64},
	})
	if err != nil {
		die(err)
	}
	buildTime := time.Since(buildStart)

	plans := make(map[string][]exec.Op, len(cfgs))
	for _, cfg := range cfgs {
		v, _ := tier.Venue(cfg.id)
		plans[cfg.id] = plan(cfg, v.Space, rounds*batch)
	}

	// Warmup: every engine sees every venue's stream once, so each mode
	// measures against equally warm distance caches.
	for _, eng := range engines {
		for _, cfg := range cfgs {
			if _, _, _, err := tier.Run(context.Background(), cfg.id, plans[cfg.id], eng); err != nil {
				die(err)
			}
		}
	}

	var modes []modeReport
	var baseline map[string][]answer
	for _, eng := range engines {
		rep, ans, err := runMode(tier, cfgs, plans, rounds, batch, eng, "pin:"+eng)
		if err != nil {
			die(err)
		}
		if baseline == nil {
			baseline = ans
		} else {
			checkAnswers(baseline, ans, rep.Mode)
		}
		modes = append(modes, rep)
	}
	routed, routedAns, err := runMode(tier, cfgs, plans, rounds, batch, "", "routed")
	if err != nil {
		die(err)
	}
	checkAnswers(baseline, routedAns, routed.Mode)
	modes = append(modes, routed)

	best, worst := modes[0], modes[0]
	for _, m := range modes[:len(modes)-1] {
		if m.P95Ns < best.P95Ns {
			best = m
		}
		if m.P95Ns > worst.P95Ns {
			worst = m
		}
	}
	vsBestPct := 100 * (float64(routed.P95Ns) - float64(best.P95Ns)) / float64(best.P95Ns)
	beatsWorst := routed.P95Ns < worst.P95Ns

	decisions := map[string]any{}
	for _, cfg := range cfgs {
		v, _ := tier.Venue(cfg.id)
		decisions[cfg.id] = v.Router().Decisions()
	}

	if *smoke {
		for _, cfg := range cfgs {
			v, _ := tier.Venue(cfg.id)
			if got := len(v.Router().Decisions()); got != 3 {
				die(fmt.Errorf("venue %s: %d decisions, want 3", cfg.id, got))
			}
		}
		if routed.Errs != 0 {
			die(fmt.Errorf("routed mode had %d errors", routed.Errs))
		}
		fmt.Println("smoke ok: routed answers identical to every pinned engine across venues")
		return
	}

	report := map[string]any{
		"bench": "isqroutebench (PR 9): routed vs pinned-engine serving on a skewed multi-venue workload",
		"config": map[string]any{
			"venues": len(cfgs), "engines": engines, "rounds": rounds,
			"batch": batch, "objectsPerVenue": objects, "tierBuildMs": buildTime.Milliseconds(),
		},
		"modes":               modes,
		"bestPinned":          best.Mode,
		"worstPinned":         worst.Mode,
		"routedP95Ns":         routed.P95Ns,
		"routedVsBestP95Pct":  math.Round(vsBestPct*100) / 100,
		"routedBeatsWorstP95": beatsWorst,
		"routedWithin10Pct":   vsBestPct <= 10,
		"decisions":           decisions,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("routed p95 %s vs best pinned (%s) %s (%+.1f%%), worst pinned (%s) %s; wrote %s\n",
		routed.P95, best.Mode, best.P95, vsBestPct, worst.Mode, worst.P95, *out)
}

// checkAnswers asserts a mode's answers are identical to the baseline's:
// range id sets, kNN result counts, and bitwise SPD distances.
func checkAnswers(base, got map[string][]answer, mode string) {
	for id, want := range base {
		g := got[id]
		if len(g) != len(want) {
			die(fmt.Errorf("mode %s venue %s: %d answers, want %d", mode, id, len(g), len(want)))
		}
		for i := range want {
			if !sameAnswer(want[i], g[i]) {
				die(fmt.Errorf("mode %s venue %s op %d: answer diverged from baseline", mode, id, i))
			}
		}
	}
}
