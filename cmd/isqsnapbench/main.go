// Command isqsnapbench measures what the snapshot subsystem buys: cold
// engine construction vs snapshot load (wall clock and peak RSS) at venues
// of roughly 10^3, 10^4 and 10^5 doors, plus the latency of an atomic
// serving-state swap while queries hammer the server.
//
// Usage:
//
//	isqsnapbench [-o BENCH_PR8.json]
//	isqsnapbench -smoke
//
// Venues reuse the door-graph bench recipe (single-floor spacegen grids at
// 31x31, 100x99 and 316x316 rooms). Engine sets shrink as venues grow,
// matching what is buildable at each scale: IDINDEX's O(n^2) matrices need
// ~160 GB at 10^5 doors, so the 10k and 100k tiers carry CINDEX + IPTREE
// and the 1k tier IDINDEX + CINDEX + VIPTREE.
//
// Build and load run in re-exec'd child processes so peak RSS (VmHWM from
// /proc/self/status) isolates one pass each; the venue is generated inside
// the child either way, so the cold/load comparison is engine construction
// vs artifact load on an otherwise identical process. The swap measurement
// runs in-process: a server over the 1k-tier artifact answers queries from
// four goroutines while POST /v1/swap republishes the state ten times.
//
// -smoke is the verify-full hook: a tiny venue, one build/save/load cycle
// asserting loaded engines answer identically, and three swaps under load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"indoorsq/internal/query"
	"indoorsq/internal/server"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/spacegen"
	"indoorsq/internal/workload"
)

type tier struct {
	Name    string
	Rows    int
	Cols    int
	Engines []string
}

var tiers = []tier{
	{"1k", 31, 31, []string{"IDIndex", "CIndex", "VIPTree"}},
	{"10k", 100, 99, []string{"CIndex", "IPTree"}},
	{"100k", 316, 316, []string{"CIndex", "IPTree"}},
}

func venue(t tier) (*spacegen.Params, int64) {
	p := spacegen.Params{
		Floors:     1,
		Rows:       t.Rows,
		Cols:       t.Cols,
		Hall:       spacegen.HallStraight,
		ExtraDoors: 4,
		OneWayFrac: 0.1,
		Imbalance:  0.3,
	}.Normalize()
	return &p, int64(t.Rows)
}

// childResult is the JSON one re-exec'd pass prints on stdout.
type childResult struct {
	Doors      int     `json:"doors"`
	Partitions int     `json:"partitions"`
	WallMs     float64 `json:"wallMs"`
	PeakRssMB  float64 `json:"peakRssMB"`
	FileMB     float64 `json:"fileMB"`
}

func main() {
	var (
		out   = flag.String("o", "BENCH_PR8.json", "output report path")
		smoke = flag.Bool("smoke", false, "tiny in-process pass for verify-full")
		child = flag.String("child", "", "internal: run one pass (build|load) and print JSON")
		tname = flag.String("tier", "", "internal: tier name for -child")
		snap  = flag.String("snap", "", "internal: artifact path for -child")
	)
	flag.Parse()

	if *child != "" {
		runChild(*child, *tname, *snap)
		return
	}
	if *smoke {
		runSmoke()
		return
	}
	runFull(*out)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "isqsnapbench:", err)
	os.Exit(1)
}

// peakRSS reads VmHWM (the process high-water resident set) in MB.
func peakRSS() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			var kb float64
			fmt.Sscanf(strings.TrimSpace(strings.TrimPrefix(line, "VmHWM:")), "%f", &kb)
			return kb / 1024
		}
	}
	return 0
}

func tierByName(name string) tier {
	for _, t := range tiers {
		if t.Name == name {
			return t
		}
	}
	die(fmt.Errorf("unknown tier %q", name))
	return tier{}
}

func runChild(mode, tname, snap string) {
	t := tierByName(tname)
	params, seed := venue(t)
	sp, err := spacegen.Generate(seed, *params)
	if err != nil {
		die(err)
	}
	res := childResult{Doors: sp.NumDoors(), Partitions: sp.NumPartitions()}
	switch mode {
	case "build":
		start := time.Now()
		b, err := bundle.Build(tname, sp, bundle.Options{Engines: t.Engines, Gamma: 6})
		if err != nil {
			die(err)
		}
		res.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
		if err := b.WriteFile(snap, true); err != nil {
			die(err)
		}
	case "load":
		start := time.Now()
		b, err := bundle.LoadFile(snap)
		if err != nil {
			die(err)
		}
		res.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
		if len(b.Engines) != len(t.Engines) {
			die(fmt.Errorf("loaded %d engines, want %d", len(b.Engines), len(t.Engines)))
		}
	default:
		die(fmt.Errorf("unknown child mode %q", mode))
	}
	if st, err := os.Stat(snap); err == nil {
		res.FileMB = float64(st.Size()) / 1e6
	}
	res.PeakRssMB = peakRSS()
	json.NewEncoder(os.Stdout).Encode(res)
}

func reexec(args ...string) childResult {
	exe, err := os.Executable()
	if err != nil {
		die(err)
	}
	cmd := exec.Command(exe, args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		die(fmt.Errorf("child %v: %w", args, err))
	}
	var res childResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		die(fmt.Errorf("child %v output %q: %w", args, stdout.String(), err))
	}
	return res
}

func runFull(out string) {
	dir, err := os.MkdirTemp("", "isqsnapbench")
	if err != nil {
		die(err)
	}
	defer os.RemoveAll(dir)

	var rows []map[string]any
	for _, t := range tiers {
		snap := filepath.Join(dir, t.Name+".isq")
		fmt.Printf("[%s] cold build (%s)...\n", t.Name, strings.Join(t.Engines, ","))
		build := reexec("-child", "build", "-tier", t.Name, "-snap", snap)
		fmt.Printf("[%s] %d doors: build %.0f ms, peak RSS %.0f MB, artifact %.1f MB\n",
			t.Name, build.Doors, build.WallMs, build.PeakRssMB, build.FileMB)
		load := reexec("-child", "load", "-tier", t.Name, "-snap", snap)
		speedup := build.WallMs / load.WallMs
		fmt.Printf("[%s] snapshot load %.0f ms, peak RSS %.0f MB — %.1fx faster than cold build\n",
			t.Name, load.WallMs, load.PeakRssMB, speedup)
		rows = append(rows, map[string]any{
			"tier":          t.Name,
			"doors":         build.Doors,
			"partitions":    build.Partitions,
			"engines":       t.Engines,
			"artifact_mb":   build.FileMB,
			"cold_build_ms": build.WallMs,
			"cold_peak_mb":  build.PeakRssMB,
			"load_ms":       load.WallMs,
			"load_peak_mb":  load.PeakRssMB,
			"load_speedup":  speedup,
		})
	}

	swapStats := measureSwap(filepath.Join(dir, "1k.isq"), 10)

	full := map[string]any{
		"pr":    8,
		"title": "Versioned serving snapshots: binary artifact, zero-copy load, atomic hot swap",
		"date":  time.Now().Format("2006-01-02"),
		"runner": map[string]any{
			"cpu":   runtime.GOARCH,
			"nproc": runtime.NumCPU(),
			"note": "cold build = bundle.Build of the tier's engine set over an in-memory venue " +
				"(door graph, both reach summaries, engine matrices); load = bundle.LoadFile of the " +
				"artifact written by the build pass (includes parsing the space and warm cache pages). " +
				"Each pass runs in its own process; peak RSS is VmHWM and includes venue generation " +
				"in both. swap_ms are POST /v1/swap latencies (load + atomic publish) measured while " +
				"four goroutines hammer range/knn/route on the serving state.",
		},
		"tiers": rows,
		"swap":  swapStats,
	}
	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		die(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote", out)
}

// measureSwap times POST /v1/swap on a server answering concurrent queries.
func measureSwap(snap string, swaps int) map[string]any {
	b, err := bundle.LoadFile(snap)
	if err != nil {
		die(err)
	}
	names := b.EngineList()
	srv, err := server.NewFromBundle(b, names[0])
	if err != nil {
		die(err)
	}
	srv.State().SetObjects(workload.New(b.Space, 1).Objects(256))
	handler := srv.Handler()
	pts := workload.New(b.Space, 2).Points(8)

	done := make(chan struct{})
	var wg sync.WaitGroup
	var failed int64
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := pts[i%len(pts)]
				q := pts[(i+3)%len(pts)]
				var url string
				switch i % 3 {
				case 0:
					url = fmt.Sprintf("/v1/range?x=%g&y=%g&floor=%d&r=40", p.X, p.Y, p.Floor)
				case 1:
					url = fmt.Sprintf("/v1/knn?x=%g&y=%g&floor=%d&k=5", p.X, p.Y, p.Floor)
				case 2:
					url = fmt.Sprintf("/v1/route?x=%g&y=%g&floor=%d&x2=%g&y2=%g&floor2=%d",
						p.X, p.Y, p.Floor, q.X, q.Y, q.Floor)
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				if rec.Code != http.StatusOK && rec.Code != http.StatusUnprocessableEntity {
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}
		}()
	}
	lat := make([]float64, 0, swaps)
	body := fmt.Sprintf(`{"path":%q}`, snap)
	for i := 0; i < swaps; i++ {
		rec := httptest.NewRecorder()
		start := time.Now()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/swap", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			die(fmt.Errorf("swap %d: %d %s", i, rec.Code, rec.Body.String()))
		}
		lat = append(lat, float64(time.Since(start).Nanoseconds())/1e6)
	}
	close(done)
	wg.Wait()
	if failed > 0 {
		die(fmt.Errorf("%d queries failed during swaps", failed))
	}
	sort.Float64s(lat)
	stats := map[string]any{
		"swaps":            swaps,
		"query_goroutines": 4,
		"failed_queries":   failed,
		"p50_ms":           lat[len(lat)/2],
		"max_ms":           lat[len(lat)-1],
		"final_epoch":      srv.Epoch(),
	}
	fmt.Printf("[swap] %d swaps under load: p50 %.1f ms, max %.1f ms, 0 failed queries\n",
		swaps, lat[len(lat)/2], lat[len(lat)-1])
	return stats
}

// runSmoke is the verify-full hook: everything above, shrunk to seconds.
func runSmoke() {
	params := spacegen.Params{
		Floors: 2, Rows: 8, Cols: 8, ExtraDoors: 2, OneWayFrac: 0.2,
	}.Normalize()
	sp, err := spacegen.Generate(11, params)
	if err != nil {
		die(err)
	}
	dir, err := os.MkdirTemp("", "isqsnapsmoke")
	if err != nil {
		die(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "smoke.isq")

	start := time.Now()
	built, err := bundle.Build("smoke", sp, bundle.Options{Gamma: 4})
	if err != nil {
		die(err)
	}
	buildMs := float64(time.Since(start).Nanoseconds()) / 1e6
	if err := built.WriteFile(snap, true); err != nil {
		die(err)
	}
	start = time.Now()
	loaded, err := bundle.LoadFile(snap)
	if err != nil {
		die(err)
	}
	loadMs := float64(time.Since(start).Nanoseconds()) / 1e6

	// Loaded engines must answer exactly like the built ones.
	objs := spacegen.Objects(sp, 3, 24)
	pairs := workload.New(sp, 4).SPDPairs(0.5, 4)
	for _, name := range built.EngineList() {
		be, le := built.Engines[name], loaded.Engines[name]
		be.SetObjects(objs)
		le.SetObjects(objs)
		var st query.Stats
		for _, pr := range pairs {
			bp, berr := be.SPD(pr.P, pr.Q, &st)
			lp, lerr := le.SPD(pr.P, pr.Q, &st)
			if (berr == nil) != (lerr == nil) ||
				(berr == nil && math.Float64bits(bp.Dist) != math.Float64bits(lp.Dist)) {
				die(fmt.Errorf("smoke: %s SPD diverged after load", name))
			}
		}
	}
	measureSwap(snap, 3)
	fmt.Printf("snapshot smoke OK: build %.0f ms, load %.1f ms, %d engines bit-identical\n",
		buildMs, loadMs, len(built.Engines))
}
