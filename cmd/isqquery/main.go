// Command isqquery runs a single indoor spatial query against a benchmark
// dataset with a chosen engine — handy for exploring datasets and comparing
// engines by hand.
//
// Usage:
//
//	isqquery [-dataset CPH] [-engine VIPTree] [-objects 1000] [-seed 1] <cmd> [args]
//
// Commands:
//
//	rq   -x X -y Y [-floor F] -r R          range query
//	knn  -x X -y Y [-floor F] [-k 5]        k nearest neighbors
//	spd  -x X -y Y -x2 X2 -y2 Y2 [...]      shortest path + distance
//	rand -type rq|knn|spd [-n 3]            random query instances
//
// Example:
//
//	isqquery -dataset CPH -engine IDIndex knn -x 1000 -y 300 -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"indoorsq/internal/bench"
	"indoorsq/internal/dataset"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/workload"
)

func main() {
	var (
		ds      = flag.String("dataset", "CPH", "benchmark dataset")
		engine  = flag.String("engine", "VIPTree", "engine: IDModel, IDIndex, CIndex, IPTree, VIPTree")
		objects = flag.Int("objects", 1000, "number of random objects")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	eng, err := bench.NewEngine(*engine, info)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	gen := workload.New(info.Space, *seed)
	eng.SetObjects(gen.Objects(*objects))
	fmt.Printf("%s over %s: built in %v, %.1f MB\n",
		eng.Name(), info.Name, buildTime.Round(time.Millisecond), float64(eng.SizeBytes())/1e6)

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "rq":
		fs := flag.NewFlagSet("rq", flag.ExitOnError)
		x := fs.Float64("x", 0, "x")
		y := fs.Float64("y", 0, "y")
		fl := fs.Int("floor", 0, "floor")
		r := fs.Float64("r", info.DefaultR, "range radius (m)")
		fs.Parse(args)
		runRQ(eng, indoor.At(*x, *y, int16(*fl)), *r)
	case "knn":
		fs := flag.NewFlagSet("knn", flag.ExitOnError)
		x := fs.Float64("x", 0, "x")
		y := fs.Float64("y", 0, "y")
		fl := fs.Int("floor", 0, "floor")
		k := fs.Int("k", 5, "k")
		fs.Parse(args)
		runKNN(eng, indoor.At(*x, *y, int16(*fl)), *k)
	case "spd":
		fs := flag.NewFlagSet("spd", flag.ExitOnError)
		x := fs.Float64("x", 0, "source x")
		y := fs.Float64("y", 0, "source y")
		fl := fs.Int("floor", 0, "source floor")
		x2 := fs.Float64("x2", 0, "target x")
		y2 := fs.Float64("y2", 0, "target y")
		fl2 := fs.Int("floor2", 0, "target floor")
		fs.Parse(args)
		runSPD(eng, indoor.At(*x, *y, int16(*fl)), indoor.At(*x2, *y2, int16(*fl2)))
	case "rand":
		fs := flag.NewFlagSet("rand", flag.ExitOnError)
		typ := fs.String("type", "knn", "query type: rq, knn, spd")
		n := fs.Int("n", 3, "instances")
		fs.Parse(args)
		for i := 0; i < *n; i++ {
			switch *typ {
			case "rq":
				runRQ(eng, gen.Point(), info.DefaultR)
			case "knn":
				runKNN(eng, gen.Point(), 5)
			case "spd":
				pr := gen.SPDPairs(info.DefaultS2T, 1)[0]
				runSPD(eng, pr.P, pr.Q)
			default:
				log.Fatalf("unknown random query type %q", *typ)
			}
		}
	default:
		log.Fatalf("unknown command %q (want rq, knn, spd, rand)", cmd)
	}
}

func runRQ(eng query.Engine, p indoor.Point, r float64) {
	var st query.Stats
	start := time.Now()
	ids, err := eng.Range(p, r, &st)
	if err != nil {
		log.Fatalf("rq: %v", err)
	}
	fmt.Printf("RQ((%.0f,%.0f,f%d), %.0fm): %d objects in %v (NVD %d)\n",
		p.X, p.Y, p.Floor, r, len(ids), time.Since(start).Round(time.Microsecond), st.VisitedDoors)
}

func runKNN(eng query.Engine, p indoor.Point, k int) {
	var st query.Stats
	start := time.Now()
	nn, err := eng.KNN(p, k, &st)
	if err != nil {
		log.Fatalf("knn: %v", err)
	}
	fmt.Printf("%dNN((%.0f,%.0f,f%d)) in %v:", k, p.X, p.Y, p.Floor,
		time.Since(start).Round(time.Microsecond))
	for _, n := range nn {
		fmt.Printf(" #%d@%.1fm", n.ID, n.Dist)
	}
	fmt.Println()
}

func runSPD(eng query.Engine, p, q indoor.Point) {
	var st query.Stats
	start := time.Now()
	path, err := eng.SPD(p, q, &st)
	if err != nil {
		log.Fatalf("spd: %v", err)
	}
	fmt.Printf("SPD((%.0f,%.0f,f%d) -> (%.0f,%.0f,f%d)): %.1fm through %d doors in %v (NVD %d)\n",
		p.X, p.Y, p.Floor, q.X, q.Y, q.Floor,
		path.Dist, len(path.Doors), time.Since(start).Round(time.Microsecond), st.VisitedDoors)
}
