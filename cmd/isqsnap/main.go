// Command isqsnap builds, inspects, and verifies serving snapshots — the
// offline half of the snapshot workflow: construct the expensive engine
// materializations once, ship the artifact to a fleet, and let every
// replica boot (or SIGHUP-swap) from it in milliseconds.
//
// Usage:
//
//	isqsnap build -o venue.isq [-dataset CPH] [-engines IDModel,IDIndex,CIndex,IPTree,VIPTree]
//	              [-compact] [-workers 0] [-no-warm]
//	isqsnap inspect venue.isq
//	isqsnap verify [-queries 32] [-seed 1] venue.isq
//
// build constructs the named dataset and every selected engine, then writes
// one artifact (atomically). inspect prints the header and per-section
// layout without loading anything. verify fully loads the artifact, then
// rebuilds the same engines from the loaded space and checks a query sample
// answers bit-identically — the strongest offline guarantee that a replica
// booting this artifact serves exactly what a cold build would.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"indoorsq/internal/dataset"
	"indoorsq/internal/indoor"
	"indoorsq/internal/query"
	"indoorsq/internal/snapshot"
	"indoorsq/internal/snapshot/bundle"
	"indoorsq/internal/workload"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: isqsnap build|inspect|verify [flags] [file]")
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		out     = fs.String("o", "", "output artifact path (required)")
		ds      = fs.String("dataset", "CPH", "benchmark dataset")
		names   = fs.String("engines", strings.Join(bundle.EngineNames, ","), "engines to materialize")
		compact = fs.Bool("compact", false, "build IDINDEX with float32 matrices")
		workers = fs.Int("workers", 0, "construction parallelism (0 = GOMAXPROCS)")
		noWarm  = fs.Bool("no-warm", false, "omit the warm distance-cache pages")
	)
	fs.Parse(args)
	if *out == "" {
		log.Fatal("isqsnap build: -o is required")
	}
	info, err := dataset.Build(*ds)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	b, err := bundle.Build(info.Name, info.Space, bundle.Options{
		Engines: strings.Split(*names, ","),
		Gamma:   info.Gamma,
		Compact: *compact,
		Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	buildDur := time.Since(start)
	start = time.Now()
	if err := b.WriteFile(*out, !*noWarm); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("built %s (%v) in %v, wrote %.1f MB to %s in %v",
		info.Name, b.EngineList(), buildDur.Round(time.Millisecond),
		float64(st.Size())/1e6, *out, time.Since(start).Round(time.Millisecond))
	log.Printf("fingerprint %016x, format v%d", b.Fingerprint, snapshot.Version)
}

// tagNames maps section tags to display names for inspect.
var tagNames = map[uint32]string{
	snapshot.TagMeta:       "meta",
	snapshot.TagSpace:      "space",
	snapshot.TagDoorGraph:  "doorgraph",
	snapshot.TagIDIndex:    "idindex",
	snapshot.TagCIndex:     "cindex",
	snapshot.TagIPTree:     "iptree",
	snapshot.TagVIPTree:    "viptree",
	snapshot.TagReachSpace: "reach/space",
	snapshot.TagReachGraph: "reach/graph",
	snapshot.TagDistCache:  "distcache",
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("isqsnap inspect: exactly one artifact path")
	}
	path := fs.Arg(0)
	r, err := snapshot.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("%s: %.1f MB, format v%d, fingerprint %016x\n",
		path, float64(st.Size())/1e6, r.FormatVersion(), r.Fingerprint())
	fmt.Printf("%-12s %12s  %s\n", "SECTION", "BYTES", "CRC")
	for _, tag := range r.Tags() {
		name := tagNames[tag]
		if name == "" {
			name = fmt.Sprintf("tag%d", tag)
		}
		crc := "ok"
		if _, err := r.Section(tag); err != nil {
			crc = err.Error()
		}
		fmt.Printf("%-12s %12d  %s\n", name, r.SectionSize(tag), crc)
	}
	if meta, err := r.Section(snapshot.TagMeta); err == nil {
		venue := meta.Str()
		gamma := meta.I64()
		n := meta.Int()
		names := make([]string, 0, n)
		for i := 0; i < n && meta.Err() == nil; i++ {
			names = append(names, meta.Str())
		}
		if meta.Err() == nil {
			fmt.Printf("venue %q, gamma %d, engines %v\n", venue, gamma, names)
		}
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	var (
		queries = fs.Int("queries", 32, "query sample size per engine and type")
		seed    = fs.Int64("seed", 1, "workload seed")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("isqsnap verify: exactly one artifact path")
	}
	start := time.Now()
	loaded, err := bundle.LoadFile(fs.Arg(0))
	if err != nil {
		log.Fatalf("FAIL load: %v", err)
	}
	log.Printf("loaded %s (%v) in %v", loaded.Name, loaded.EngineList(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	rebuilt, err := bundle.Build(loaded.Name, loaded.Space, bundle.Options{
		Engines: loaded.EngineList(),
		Gamma:   loaded.Gamma,
	})
	if err != nil {
		log.Fatalf("FAIL rebuild: %v", err)
	}
	log.Printf("rebuilt reference engines in %v", time.Since(start).Round(time.Millisecond))

	gen := workload.New(loaded.Space, *seed)
	objs := gen.Objects(256)
	pts := gen.Points(*queries)
	pairs := gen.SPDPairs(0.5, *queries/2)
	mismatches := 0
	for _, name := range loaded.EngineList() {
		le, re := loaded.Engines[name], rebuilt.Engines[name]
		le.SetObjects(objs)
		re.SetObjects(objs)
		var st query.Stats
		for _, p := range pts {
			lr, lerr := le.Range(p, 50, &st)
			rr, rerr := re.Range(p, 50, &st)
			if !sameErr(lerr, rerr) || !sameI32(lr, rr) {
				mismatches++
				log.Printf("MISMATCH %s Range at (%g,%g,f%d)", name, p.X, p.Y, p.Floor)
			}
			lk, lerr := le.KNN(p, 10, &st)
			rk, rerr := re.KNN(p, 10, &st)
			if !sameErr(lerr, rerr) || !sameNN(lk, rk) {
				mismatches++
				log.Printf("MISMATCH %s KNN at (%g,%g,f%d)", name, p.X, p.Y, p.Floor)
			}
		}
		for _, pr := range pairs {
			lp, lerr := le.SPD(pr.P, pr.Q, &st)
			rp, rerr := re.SPD(pr.P, pr.Q, &st)
			if !sameErr(lerr, rerr) ||
				(lerr == nil && (math.Float64bits(lp.Dist) != math.Float64bits(rp.Dist) || !sameDoors(lp.Doors, rp.Doors))) {
				mismatches++
				log.Printf("MISMATCH %s SPD", name)
			}
		}
		log.Printf("verified %s", name)
	}
	if mismatches > 0 {
		log.Fatalf("FAIL: %d mismatches", mismatches)
	}
	log.Printf("PASS: all engines answer bit-identically to a cold rebuild")
}

func sameErr(a, b error) bool { return (a == nil) == (b == nil) }

func sameI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameNN(a, b []query.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

func sameDoors(a, b []indoor.DoorID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
